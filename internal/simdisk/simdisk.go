// Package simdisk models the local storage of one I/O server: a disk with a
// seek-plus-transfer cost model fronted by an LRU page cache with write-back,
// mimicking the Linux buffer cache the paper's servers ran on.
//
// The model captures the three storage effects the paper's evaluation hinges
// on:
//
//   - reads of data that is in the server's page cache are (nearly) free,
//     while uncached reads pay seek plus transfer time — this is why RAID5's
//     read-modify-write is cheap in Figure 4(b) (cache-warm) and collapses in
//     the overwrite experiments of Figures 6(b) and 7(b) (cache-cold);
//   - writing a *partial* page that is not cached forces the page to be read
//     from disk first — the previously undocumented problem of Section 5.2
//     that CSAR's server-side write buffering works around;
//   - the cache has finite capacity, so a scheme writing twice the bytes
//     (RAID1) overflows it earlier and degrades to disk speed — the RAID1
//     collapse in the BTIO Class C runs.
//
// Contents are always held in memory; the cache is a timing overlay, not a
// correctness mechanism. A failed server is simulated by discarding the
// whole Disk, so write-back ordering never becomes user-visible.
package simdisk

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/simtime"
	"csar/internal/storage"
)

// Params configures the disk model.
type Params struct {
	// PageSize is the local file system block size in bytes.
	PageSize int
	// CacheBytes is the page cache capacity. Zero means an unbounded cache
	// (pages are never evicted; only Sync writes reach the disk arm).
	CacheBytes int64
	// SeekTime is the simulated positioning cost of one physical disk access.
	SeekTime time.Duration
	// ReadBW and WriteBW are the media transfer rates in bytes per
	// simulated second.
	ReadBW, WriteBW float64
}

// DefaultParams models the paper's first testbed: two IBM Deskstar 75GXP
// disks behind a 3Ware controller in RAID0 (roughly 70 MB/s streaming) with
// a 4 KiB block size. SeekTime is the cost of a random repositioning (seek
// plus rotational latency, ~9 ms on that generation of drives); sequential
// access does not pay it because the model coalesces contiguous runs, both
// within one request and across consecutive requests.
func DefaultParams() Params {
	return Params{
		PageSize:   4096,
		CacheBytes: 256 << 20,
		SeekTime:   9 * time.Millisecond,
		ReadBW:     70e6,
		WriteBW:    70e6,
	}
}

// Stats counts modeled physical disk activity and cache behaviour.
type Stats struct {
	DiskReadOps    int64
	DiskReadBytes  int64
	DiskWriteOps   int64
	DiskWriteBytes int64
	CacheHits      int64
	CacheMisses    int64
	// ForcedPageReads counts pages read from disk only because a partial
	// page write targeted an uncached page (the Section 5.2 effect).
	ForcedPageReads int64
}

// Disk is one server's storage. All methods are safe for concurrent use.
type Disk struct {
	params Params
	clock  *simtime.Clock
	arm    *simtime.Limiter // the serial disk mechanism

	mu         sync.Mutex
	files      map[string]*fileData
	lru        *list.List // of *cachePage, front = most recent
	index      map[pageKey]*list.Element
	cachePages int64 // current number of cached pages
	capPages   int64 // capacity in pages; 0 = unbounded
	lastEvict  pageKey
	haveEvict  bool
	// readStreams are the cursors of recently active sequential read
	// streams — the model's stand-in for per-stream OS readahead plus
	// elevator request sorting, which let several concurrent streaming
	// readers share one disk without paying a full seek per request.
	readStreams [16]pageKey
	nStreams    int
	streamHand  int

	stats struct {
		readOps, readBytes, writeOps, writeBytes int64
		hits, misses, forced                     int64
	}
}

type fileData struct {
	name  string
	size  int64
	pages map[int64][]byte // page index -> PageSize bytes
}

type pageKey struct {
	f    *fileData
	page int64
}

type cachePage struct {
	key   pageKey
	dirty bool
}

// charge accumulates modeled disk work decided under the mutex and paid for
// after it is released.
type charge struct {
	seek  time.Duration // accumulated positioning time
	ops   int           // number of physical accesses (for stats)
	read  int64
	write int64
}

// nearGapPages is the threshold below which a jump counts as a short
// track-to-track seek (an elevator pass skipping a small hole) rather than
// a full repositioning.
const nearGapPages = 512

// nearSeekFraction is the cost of a short seek relative to a full one.
const nearSeekFraction = 8

// seekFor returns the positioning cost of starting a physical access at
// page next, given that the previous access on this resource ended just
// before page prev (valid when have is true).
func (d *Disk) seekFor(have bool, prev, next pageKey) time.Duration {
	if have && prev.f == next.f {
		gap := next.page - prev.page
		if gap == 0 {
			return 0 // strictly sequential
		}
		if gap > 0 && gap <= nearGapPages {
			return d.params.SeekTime / nearSeekFraction
		}
	}
	return d.params.SeekTime
}

// readSeekFor returns the positioning cost of physically reading page next,
// matching it against the pool of active stream cursors: a page continuing
// a known stream is free, a short forward hop costs a track-to-track seek,
// anything else is a full repositioning that starts a new stream. Caller
// holds d.mu.
func (d *Disk) readSeekFor(next pageKey) time.Duration {
	for i := 0; i < d.nStreams; i++ {
		s := &d.readStreams[i]
		if s.f != next.f {
			continue
		}
		gap := next.page - s.page
		if gap == 0 {
			s.page = next.page + 1
			return 0
		}
		if gap > 0 && gap <= nearGapPages {
			s.page = next.page + 1
			return d.params.SeekTime / nearSeekFraction
		}
	}
	// New stream: replace round-robin once the pool is full.
	if d.nStreams < len(d.readStreams) {
		d.readStreams[d.nStreams] = pageKey{next.f, next.page + 1}
		d.nStreams++
	} else {
		d.readStreams[d.streamHand] = pageKey{next.f, next.page + 1}
		d.streamHand = (d.streamHand + 1) % len(d.readStreams)
	}
	return d.params.SeekTime
}

// New creates a disk with the given timing model. An untimed clock yields a
// functionally identical disk with all delays elided.
func New(clock *simtime.Clock, p Params) *Disk {
	if p.PageSize <= 0 {
		panic(fmt.Sprintf("simdisk: invalid page size %d", p.PageSize))
	}
	d := &Disk{
		params: p,
		clock:  clock,
		arm:    simtime.NewLimiter(clock, 1), // rate unused; durations only
		files:  make(map[string]*fileData),
		lru:    list.New(),
		index:  make(map[pageKey]*list.Element),
	}
	if p.CacheBytes > 0 {
		d.capPages = p.CacheBytes / int64(p.PageSize)
		if d.capPages < 1 {
			d.capPages = 1
		}
	}
	return d
}

// Params returns the disk's configuration.
func (d *Disk) Params() Params { return d.params }

// Open returns a handle to the named file, creating it empty if absent.
// It satisfies storage.Backend.
func (d *Disk) Open(name string) storage.File { return d.OpenFile(name) }

// OpenFile is Open with the concrete handle type (for tests that need the
// cache internals).
func (d *Disk) OpenFile(name string) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		f = &fileData{name: name, pages: make(map[int64][]byte)}
		d.files[name] = f
	}
	return &File{d: d, f: f}
}

// Remove deletes the named file and drops its cached pages.
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		return
	}
	delete(d.files, name)
	for page := range f.pages {
		d.dropPage(pageKey{f, page})
	}
	f.pages = nil
}

// FileNames returns the names of all files on the disk, sorted.
func (d *Disk) FileNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes returns the sum of all file sizes (logical sizes, counting
// holes).
func (d *Disk) TotalBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, f := range d.files {
		n += f.size
	}
	return n
}

// AllocatedBytes returns the sum of materialized blocks across all files —
// `du` semantics: holes in sparse files do not count. This is the "sum of
// the file sizes at the I/O servers" measured for Table 2 of the paper,
// where the Hybrid scheme's in-place data files are sparse wherever the
// data lives only in the overflow region.
func (d *Disk) AllocatedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, f := range d.files {
		n += int64(len(f.pages)) * int64(d.params.PageSize)
	}
	return n
}

// Stats returns a snapshot of the disk's counters.
func (d *Disk) Stats() Stats {
	return Stats{
		DiskReadOps:     atomic.LoadInt64(&d.stats.readOps),
		DiskReadBytes:   atomic.LoadInt64(&d.stats.readBytes),
		DiskWriteOps:    atomic.LoadInt64(&d.stats.writeOps),
		DiskWriteBytes:  atomic.LoadInt64(&d.stats.writeBytes),
		CacheHits:       atomic.LoadInt64(&d.stats.hits),
		CacheMisses:     atomic.LoadInt64(&d.stats.misses),
		ForcedPageReads: atomic.LoadInt64(&d.stats.forced),
	}
}

// DropCaches empties the page cache without charging any disk time, after
// flushing nothing: it models the paper's method of removing a file's
// contents from server memory between the initial-write and overwrite runs.
// Dirty pages are silently marked clean first (contents are never lost in
// the model).
func (d *Disk) DropCaches() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lru.Init()
	d.index = make(map[pageKey]*list.Element)
	d.cachePages = 0
	d.haveEvict = false
	d.nStreams = 0
	d.streamHand = 0
}

// pay charges accumulated physical work to the disk arm and the counters.
func (d *Disk) pay(c charge) {
	if c.ops == 0 && c.read == 0 && c.write == 0 {
		return
	}
	atomic.AddInt64(&d.stats.readOps, int64(c.ops)) // approximate: ops counted once as accesses
	atomic.AddInt64(&d.stats.readBytes, c.read)
	atomic.AddInt64(&d.stats.writeBytes, c.write)
	if !d.clock.Timed() {
		return
	}
	sim := c.seek
	if d.params.ReadBW > 0 {
		sim += time.Duration(float64(c.read) / d.params.ReadBW * float64(time.Second))
	}
	if d.params.WriteBW > 0 {
		sim += time.Duration(float64(c.write) / d.params.WriteBW * float64(time.Second))
	}
	d.arm.AcquireDur(sim)
}

// touch marks a page most-recently-used, inserting it if absent, and evicts
// as needed. Caller holds d.mu. Returns whether the page was already cached,
// plus the eviction charge incurred.
func (d *Disk) touch(key pageKey, dirty bool) (wasCached bool, c charge) {
	if el, ok := d.index[key]; ok {
		d.lru.MoveToFront(el)
		cp := el.Value.(*cachePage)
		cp.dirty = cp.dirty || dirty
		return true, c
	}
	cp := &cachePage{key: key, dirty: dirty}
	d.index[key] = d.lru.PushFront(cp)
	d.cachePages++
	for d.capPages > 0 && d.cachePages > d.capPages {
		back := d.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cachePage)
		if victim.dirty {
			// Write-back is elevator-scheduled in practice: evicting pages
			// in or near file order costs little or no positioning.
			if sk := d.seekFor(d.haveEvict, d.lastEvict, victim.key); sk > 0 {
				c.seek += sk
				c.ops++
			}
			c.write += int64(d.params.PageSize)
			atomic.AddInt64(&d.stats.writeOps, 1)
			d.lastEvict = pageKey{victim.key.f, victim.key.page + 1}
			d.haveEvict = true
		}
		d.dropElement(back)
	}
	return false, c
}

func (d *Disk) dropElement(el *list.Element) {
	cp := el.Value.(*cachePage)
	d.lru.Remove(el)
	delete(d.index, cp.key)
	d.cachePages--
}

func (d *Disk) dropPage(key pageKey) {
	if el, ok := d.index[key]; ok {
		d.dropElement(el)
	}
}

// File is a handle to one file on a Disk.
type File struct {
	d *Disk
	f *fileData
}

// Name returns the file's name on its disk.
func (h *File) Name() string { return h.f.name }

// Size returns the current file size (highest written offset).
func (h *File) Size() int64 {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	return h.f.size
}

// Allocated returns the file's materialized bytes (block-granular, `du`
// semantics): holes contribute nothing.
func (h *File) Allocated() int64 {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	return int64(len(h.f.pages)) * int64(h.d.params.PageSize)
}

// page returns the backing slice for page idx, allocating it if needed.
// Caller holds d.mu.
func (f *fileData) page(ps int, idx int64, alloc bool) []byte {
	p := f.pages[idx]
	if p == nil && alloc {
		p = make([]byte, ps)
		f.pages[idx] = p
	}
	return p
}

// ReadAt reads len(p) bytes at offset off. Bytes beyond the current file
// size (or in never-written holes) read as zero; it always returns len(p),
// matching how the CSAR servers treat sparse regions of their local files.
func (h *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("simdisk: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	d := h.d
	ps := int64(d.params.PageSize)

	d.mu.Lock()
	var c charge
	end := off + int64(len(p))
	for cur := off; cur < end; {
		idx := cur / ps
		pageEnd := (idx + 1) * ps
		if pageEnd > end {
			pageEnd = end
		}
		withinSize := idx*ps < h.f.size
		if withinSize {
			cached, ev := d.touch(pageKey{h.f, idx}, false)
			c.ops += ev.ops
			c.seek += ev.seek
			c.read += ev.read
			c.write += ev.write
			if cached {
				atomic.AddInt64(&d.stats.hits, 1)
			} else {
				atomic.AddInt64(&d.stats.misses, 1)
				if sk := d.readSeekFor(pageKey{h.f, idx}); sk > 0 {
					c.seek += sk
					c.ops++
				}
				c.read += ps
			}
		}
		src := h.f.page(int(ps), idx, false)
		dst := p[cur-off : pageEnd-off]
		if src != nil {
			copy(dst, src[cur-idx*ps:])
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		cur = pageEnd
	}
	d.mu.Unlock()
	d.pay(c)
	return len(p), nil
}

// ReadAtDirect reads like ReadAt but bypasses the page cache, O_DIRECT
// style: no pages are inserted, promoted, or evicted, and every in-size
// page is charged as a physical read even when a cached copy exists. Long
// sequential scans — the integrity scrubber's checksum sweeps — use it so a
// background pass can neither evict the foreground working set nor absorb
// its dirty-page write-backs.
func (h *File) ReadAtDirect(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("simdisk: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	d := h.d
	ps := int64(d.params.PageSize)

	d.mu.Lock()
	var c charge
	end := off + int64(len(p))
	for cur := off; cur < end; {
		idx := cur / ps
		pageEnd := (idx + 1) * ps
		if pageEnd > end {
			pageEnd = end
		}
		if idx*ps < h.f.size {
			atomic.AddInt64(&d.stats.misses, 1)
			if sk := d.readSeekFor(pageKey{h.f, idx}); sk > 0 {
				c.seek += sk
				c.ops++
			}
			c.read += ps
		}
		src := h.f.page(int(ps), idx, false)
		dst := p[cur-off : pageEnd-off]
		if src != nil {
			copy(dst, src[cur-idx*ps:])
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		cur = pageEnd
	}
	d.mu.Unlock()
	d.pay(c)
	return len(p), nil
}

// WriteAt writes len(p) bytes at offset off, extending the file as needed.
// Full-page writes land in the cache dirty; partial-page writes to uncached
// pages inside the file pay a forced page read first (Section 5.2).
func (h *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("simdisk: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	d := h.d
	ps := int64(d.params.PageSize)

	d.mu.Lock()
	var c charge
	end := off + int64(len(p))
	for cur := off; cur < end; {
		idx := cur / ps
		pageStart := idx * ps
		pageEnd := pageStart + ps
		wEnd := pageEnd
		if wEnd > end {
			wEnd = end
		}
		partial := cur > pageStart || wEnd < pageEnd
		// A partial write only needs the old page if the page holds data,
		// i.e. it starts inside the current file size.
		needsOld := partial && pageStart < h.f.size
		cached, ev := d.touch(pageKey{h.f, idx}, true)
		c.ops += ev.ops
		c.seek += ev.seek
		c.read += ev.read
		c.write += ev.write
		if !cached && needsOld {
			atomic.AddInt64(&d.stats.forced, 1)
			atomic.AddInt64(&d.stats.misses, 1)
			if sk := d.readSeekFor(pageKey{h.f, idx}); sk > 0 {
				c.seek += sk
				c.ops++
			} else {
				c.ops++
			}
			c.read += ps
		}
		dst := h.f.page(int(ps), idx, true)
		copy(dst[cur-pageStart:], p[cur-off:wEnd-off])
		cur = wEnd
	}
	if end > h.f.size {
		h.f.size = end
	}
	d.mu.Unlock()
	d.pay(c)
	return len(p), nil
}

// Truncate sets the file size, discarding contents and cache beyond it.
func (h *File) Truncate(size int64) {
	if size < 0 {
		size = 0
	}
	d := h.d
	ps := int64(d.params.PageSize)
	d.mu.Lock()
	defer d.mu.Unlock()
	firstDead := (size + ps - 1) / ps
	for idx := range h.f.pages {
		if idx >= firstDead {
			delete(h.f.pages, idx)
			d.dropPage(pageKey{h.f, idx})
		}
	}
	if size < h.f.size && size%ps != 0 {
		// Zero the tail of the now-last page.
		if pg := h.f.pages[size/ps]; pg != nil {
			for i := size % ps; i < ps; i++ {
				pg[i] = 0
			}
		}
	}
	h.f.size = size
}

// Sync flushes all dirty cached pages of this file to the modeled disk,
// charging one access per contiguous dirty run. It corresponds to the
// post-write flush the paper's benchmarks measure.
func (h *File) Sync() {
	d := h.d
	ps := int64(d.params.PageSize)
	d.mu.Lock()
	var dirty []int64
	for el := d.lru.Front(); el != nil; el = el.Next() {
		cp := el.Value.(*cachePage)
		if cp.key.f == h.f && cp.dirty {
			dirty = append(dirty, cp.key.page)
			cp.dirty = false
		}
	}
	d.mu.Unlock()
	if len(dirty) == 0 {
		return
	}
	// One elevator pass in ascending order: a full repositioning to start,
	// then short hops over small holes (the Hybrid scheme's data files are
	// sparse at partial-stripe portions) and full seeks over large ones.
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	var c charge
	c.seek = d.params.SeekTime
	c.ops = 1
	for i := 1; i < len(dirty); i++ {
		if gap := dirty[i] - dirty[i-1]; gap != 1 {
			c.ops++
			if gap <= nearGapPages {
				c.seek += d.params.SeekTime / nearSeekFraction
			} else {
				c.seek += d.params.SeekTime
			}
		}
	}
	c.write = int64(len(dirty)) * ps
	atomic.AddInt64(&d.stats.writeOps, int64(c.ops))
	d.pay(c)
}

// SyncAll flushes every dirty page on the disk.
func (d *Disk) SyncAll() {
	d.mu.Lock()
	files := make([]*fileData, 0, len(d.files))
	for _, f := range d.files {
		files = append(files, f)
	}
	d.mu.Unlock()
	for _, f := range files {
		(&File{d: d, f: f}).Sync()
	}
}

// Interface conformance.
var (
	_ storage.Backend = (*Disk)(nil)
	_ storage.File    = (*File)(nil)
)
