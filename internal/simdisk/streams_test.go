package simdisk

import (
	"testing"
	"time"

	"csar/internal/simtime"
)

// seekParams returns an untimed model where physical access counters are
// the observable (DiskReadOps counts positioning events, not pages).
func seekParams() Params {
	return Params{
		PageSize:   4096,
		CacheBytes: 4096 * 8, // tiny cache so reads miss
		SeekTime:   9 * time.Millisecond,
		ReadBW:     70e6,
		WriteBW:    70e6,
	}
}

func TestSequentialColdReadIsOneAccessRun(t *testing.T) {
	d := New(nil, seekParams())
	f := d.OpenFile("s")
	f.WriteAt(make([]byte, 1<<20), 0)
	d.DropCaches()
	before := d.Stats().DiskReadOps

	// 256 pages read as 16 sequential calls: one positioning event total.
	buf := make([]byte, 64<<10)
	for off := int64(0); off < 1<<20; off += int64(len(buf)) {
		f.ReadAt(buf, off)
	}
	if got := d.Stats().DiskReadOps - before; got != 1 {
		t.Fatalf("sequential read across calls cost %d positioning events, want 1", got)
	}
}

func TestInterleavedStreamsKeepTheirCursors(t *testing.T) {
	d := New(nil, seekParams())
	a := d.OpenFile("a")
	b := d.OpenFile("b")
	a.WriteAt(make([]byte, 1<<20), 0)
	b.WriteAt(make([]byte, 1<<20), 0)
	d.DropCaches()
	before := d.Stats().DiskReadOps

	// Two interleaved sequential streams: one positioning event each, not
	// one per switch — the readahead/elevator pool at work.
	buf := make([]byte, 64<<10)
	for off := int64(0); off < 1<<20; off += int64(len(buf)) {
		a.ReadAt(buf, off)
		b.ReadAt(buf, off)
	}
	if got := d.Stats().DiskReadOps - before; got > 3 {
		t.Fatalf("interleaved streams cost %d positioning events, want ~2", got)
	}
}

func TestScatteredReadsEachReposition(t *testing.T) {
	d := New(nil, seekParams())
	f := d.OpenFile("r")
	f.WriteAt(make([]byte, 64<<20), 0)
	d.DropCaches()
	before := d.Stats().DiskReadOps

	buf := make([]byte, 4096)
	for i := 0; i < 20; i++ {
		f.ReadAt(buf, int64(i)*3<<20) // far beyond any near-gap window
	}
	if got := d.Stats().DiskReadOps - before; got != 20 {
		t.Fatalf("scattered reads cost %d positioning events, want 20", got)
	}
}

func TestStreamPoolEvictsOldCursors(t *testing.T) {
	d := New(nil, seekParams())
	files := make([]*File, 20) // more streams than the 16-cursor pool
	for i := range files {
		files[i] = d.OpenFile(string(rune('a' + i)))
		files[i].WriteAt(make([]byte, 64<<10), 0)
	}
	d.DropCaches()
	buf := make([]byte, 4096)
	// Round-robin over 20 streams: some cursors get evicted, so extra
	// positioning events occur, but the model must not wedge or panic and
	// must stay bounded by one event per read.
	before := d.Stats().DiskReadOps
	reads := 0
	for page := 0; page < 8; page++ {
		for _, f := range files {
			f.ReadAt(buf, int64(page)*4096)
			reads++
		}
	}
	got := d.Stats().DiskReadOps - before
	if got > int64(reads) {
		t.Fatalf("%d positioning events for %d reads", got, reads)
	}
	if got < 20 {
		t.Fatalf("only %d positioning events for 20 distinct streams", got)
	}
}

func TestSyncNearHolesCheaperThanFarHoles(t *testing.T) {
	// Two files with the same number of dirty runs; one with one-page
	// holes (elevator hops), one with enormous holes (full strokes). The
	// near-hole flush must be several times cheaper in modeled time.
	clock := &simtime.Clock{Scale: 5 * time.Millisecond} // 1 sim-s = 5ms
	p := Params{PageSize: 4096, CacheBytes: 0, SeekTime: 200 * time.Millisecond, ReadBW: 1e12, WriteBW: 1e12}

	elapsed := func(strideBytes int64) time.Duration {
		d := New(clock, p)
		f := d.OpenFile("h")
		for i := int64(0); i < 32; i++ {
			f.WriteAt(make([]byte, 4096), i*strideBytes)
		}
		start := time.Now()
		f.Sync()
		return time.Since(start)
	}

	near := elapsed(2 * 4096)  // one-page holes
	far := elapsed(600 * 4096) // beyond nearGapPages, so full strokes
	if far < near*2 {
		t.Fatalf("far-hole sync (%v) not clearly costlier than near-hole sync (%v)", far, near)
	}
}
