package simdisk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"csar/internal/simtime"
)

func untimedDisk(p Params) *Disk { return New(nil, p) }

func smallParams() Params {
	return Params{PageSize: 16, CacheBytes: 0, SeekTime: 0, ReadBW: 0, WriteBW: 0}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := untimedDisk(smallParams())
	f := d.Open("data")
	msg := []byte("hello cluster file system world!")
	if _, err := f.WriteAt(msg, 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := f.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
	if f.Size() != int64(5+len(msg)) {
		t.Fatalf("size=%d", f.Size())
	}
}

func TestHolesReadZero(t *testing.T) {
	d := untimedDisk(smallParams())
	f := d.Open("data")
	f.WriteAt([]byte{1, 2, 3}, 100)
	got := make([]byte, 103)
	f.ReadAt(got, 0)
	for i := 0; i < 100; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %d", i, got[i])
		}
	}
	if got[100] != 1 || got[102] != 3 {
		t.Fatal("written bytes wrong after hole")
	}
}

func TestReadBeyondEOFZeroFills(t *testing.T) {
	d := untimedDisk(smallParams())
	f := d.Open("data")
	f.WriteAt([]byte{7}, 0)
	got := []byte{9, 9, 9}
	n, err := f.ReadAt(got, 10)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatal("EOF read not zero-filled")
	}
}

func TestNegativeOffsetRejected(t *testing.T) {
	d := untimedDisk(smallParams())
	f := d.Open("data")
	if _, err := f.WriteAt([]byte{1}, -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read offset accepted")
	}
}

func TestOpenSameNameSharesContent(t *testing.T) {
	d := untimedDisk(smallParams())
	a := d.Open("x")
	b := d.Open("x")
	a.WriteAt([]byte{42}, 0)
	got := make([]byte, 1)
	b.ReadAt(got, 0)
	if got[0] != 42 {
		t.Fatal("handles to the same file not shared")
	}
}

func TestRemoveAndTotalBytes(t *testing.T) {
	d := untimedDisk(smallParams())
	d.Open("a").WriteAt(make([]byte, 100), 0)
	d.Open("b").WriteAt(make([]byte, 50), 0)
	if got := d.TotalBytes(); got != 150 {
		t.Fatalf("TotalBytes=%d", got)
	}
	names := d.FileNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("FileNames=%v", names)
	}
	d.Remove("a")
	if got := d.TotalBytes(); got != 50 {
		t.Fatalf("TotalBytes after remove=%d", got)
	}
}

func TestTruncate(t *testing.T) {
	d := untimedDisk(smallParams())
	f := d.Open("t")
	f.WriteAt(bytes.Repeat([]byte{0xAB}, 64), 0)
	f.Truncate(20)
	if f.Size() != 20 {
		t.Fatalf("size=%d", f.Size())
	}
	got := make([]byte, 64)
	f.ReadAt(got, 0)
	for i := 0; i < 20; i++ {
		if got[i] != 0xAB {
			t.Fatalf("kept byte %d lost", i)
		}
	}
	for i := 20; i < 64; i++ {
		if got[i] != 0 {
			t.Fatalf("truncated byte %d = %x", i, got[i])
		}
	}
	// Extending writes after truncate work.
	f.WriteAt([]byte{1}, 63)
	if f.Size() != 64 {
		t.Fatalf("size after rewrite=%d", f.Size())
	}
}

func TestForcedPageReadOnPartialUncachedWrite(t *testing.T) {
	p := Params{PageSize: 16, CacheBytes: 16 * 4} // 4-page cache
	d := untimedDisk(p)
	f := d.Open("data")
	f.WriteAt(make([]byte, 16*100), 0) // create a 100-page file
	d.DropCaches()                     // make it "pre-existing, uncached"

	// Full-page write: no forced read.
	f.WriteAt(make([]byte, 16), 0)
	if got := d.Stats().ForcedPageReads; got != 0 {
		t.Fatalf("full-page write forced %d reads", got)
	}
	// Partial-page write to an uncached page: exactly one forced read.
	f.WriteAt(make([]byte, 8), 16*10+3)
	if got := d.Stats().ForcedPageReads; got != 1 {
		t.Fatalf("partial write forced %d reads, want 1", got)
	}
	// Same page again (now cached): no additional forced read.
	f.WriteAt(make([]byte, 4), 16*10+1)
	if got := d.Stats().ForcedPageReads; got != 1 {
		t.Fatalf("cached partial write forced %d reads, want 1", got)
	}
	// Partial write beyond EOF: no old data exists, so no forced read.
	f.WriteAt(make([]byte, 4), 16*200+5)
	if got := d.Stats().ForcedPageReads; got != 1 {
		t.Fatalf("beyond-EOF partial write forced %d reads, want 1", got)
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	p := Params{PageSize: 16, CacheBytes: 16 * 8}
	d := untimedDisk(p)
	f := d.Open("data")
	f.WriteAt(make([]byte, 16*4), 0)
	buf := make([]byte, 16*4)
	f.ReadAt(buf, 0) // all four pages still cached from the write
	s := d.Stats()
	if s.CacheHits < 4 {
		t.Fatalf("hits=%d, want >=4", s.CacheHits)
	}
	d.DropCaches()
	f.ReadAt(buf, 0)
	s2 := d.Stats()
	if s2.CacheMisses-s.CacheMisses != 4 {
		t.Fatalf("misses after drop=%d, want 4", s2.CacheMisses-s.CacheMisses)
	}
}

func TestEvictionBoundsCache(t *testing.T) {
	p := Params{PageSize: 16, CacheBytes: 16 * 4}
	d := untimedDisk(p)
	f := d.Open("data")
	f.WriteAt(make([]byte, 16*100), 0) // 100 pages through a 4-page cache
	d.mu.Lock()
	n := d.cachePages
	d.mu.Unlock()
	if n > 4 {
		t.Fatalf("cache holds %d pages, cap 4", n)
	}
	if ops := d.Stats().DiskWriteOps; ops == 0 {
		t.Fatal("dirty evictions produced no disk writes")
	}
}

func TestSyncFlushesDirtyOnce(t *testing.T) {
	p := Params{PageSize: 16, CacheBytes: 0} // unbounded: nothing written until Sync
	d := untimedDisk(p)
	f := d.Open("data")
	f.WriteAt(make([]byte, 16*10), 0)
	if w := d.Stats().DiskWriteBytes; w != 0 {
		t.Fatalf("write-back before Sync: %d bytes", w)
	}
	f.Sync()
	if w := d.Stats().DiskWriteBytes; w != 16*10 {
		t.Fatalf("Sync wrote %d bytes, want 160", w)
	}
	f.Sync() // nothing dirty anymore
	if w := d.Stats().DiskWriteBytes; w != 16*10 {
		t.Fatalf("second Sync wrote again: %d", w)
	}
}

func TestSyncAll(t *testing.T) {
	d := untimedDisk(Params{PageSize: 16})
	d.Open("a").WriteAt(make([]byte, 32), 0)
	d.Open("b").WriteAt(make([]byte, 32), 0)
	d.SyncAll()
	if w := d.Stats().DiskWriteBytes; w != 64 {
		t.Fatalf("SyncAll wrote %d bytes, want 64", w)
	}
}

func TestTimedDiskChargesTransfer(t *testing.T) {
	clock := &simtime.Clock{Scale: 10 * time.Millisecond} // 1 sim s = 10 ms
	p := Params{PageSize: 4096, CacheBytes: 4096 * 2, SeekTime: 0, ReadBW: 1 << 20, WriteBW: 1 << 20}
	d := New(clock, p)
	f := d.Open("data")
	f.WriteAt(make([]byte, 1<<20), 0) // 1 MiB through a 2-page cache: ~1 sim s of write-back
	start := time.Now()
	f.Sync()
	d.DropCaches()
	buf := make([]byte, 1<<20)
	f.ReadAt(buf, 0) // 1 MiB cold read: ~1 sim s = 10 ms
	if got := time.Since(start); got < 5*time.Millisecond {
		t.Fatalf("timed cold read+sync took %v, expected modeled delay", got)
	}
}

func TestRandomAgainstReference(t *testing.T) {
	// The disk must behave exactly like a flat byte array regardless of
	// page size, cache size, or operation mix.
	f := func(seed int64, psSeed, cacheSeed uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ps := int(psSeed%64) + 1
		cachePages := int64(cacheSeed % 8)
		d := untimedDisk(Params{PageSize: ps, CacheBytes: cachePages * int64(ps)})
		file := d.Open("f")
		const space = 1 << 12
		ref := make([]byte, space)
		var refSize int64
		for op := 0; op < 80; op++ {
			off := int64(r.Intn(space / 2))
			n := r.Intn(space/4) + 1
			switch r.Intn(5) {
			case 0: // read and compare
				got := make([]byte, n)
				file.ReadAt(got, off)
				want := make([]byte, n)
				if off < refSize {
					copy(want, ref[off:min64(refSize, off+int64(n))])
				}
				if !bytes.Equal(got, want) {
					return false
				}
			case 1:
				d.DropCaches()
			case 2: // truncate
				sz := int64(r.Intn(space / 2))
				file.Truncate(sz)
				for i := sz; i < refSize; i++ {
					ref[i] = 0
				}
				refSize = sz
			default: // write
				data := make([]byte, n)
				r.Read(data)
				file.WriteAt(data, off)
				copy(ref[off:], data)
				if off+int64(n) > refSize {
					refSize = off + int64(n)
				}
			}
			if file.Size() != refSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestInvalidPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, Params{PageSize: 0})
}
