package csar_test

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"csar"
	"csar/internal/meta"
	"csar/internal/rpc"
	"csar/internal/server"
	"csar/internal/simdisk"
)

// restartableIOD is one loopback-TCP I/O daemon that can be stopped — its
// listener and every live connection closed — and brought back on the same
// address with its storage intact, the way an operator restarts a crashed
// iod process.
type restartableIOD struct {
	addr string
	srv  *server.Server

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
}

func startIOD(t *testing.T, idx int) *restartableIOD {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &restartableIOD{
		addr: ln.Addr().String(),
		srv:  server.New(idx, simdisk.New(nil, simdisk.Params{PageSize: 4096}), server.DefaultOptions()),
	}
	d.serve(ln)
	t.Cleanup(d.stop)
	return d
}

func (d *restartableIOD) serve(ln net.Listener) {
	d.mu.Lock()
	d.ln = ln
	d.conns = make(map[net.Conn]struct{})
	d.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			d.mu.Lock()
			if d.ln != ln { // stopped while accepting
				d.mu.Unlock()
				conn.Close()
				return
			}
			d.conns[conn] = struct{}{}
			d.mu.Unlock()
			go func() {
				rpc.ServeConn(conn, d.srv.Handle, nil, nil) //nolint:errcheck
				d.mu.Lock()
				delete(d.conns, conn)
				d.mu.Unlock()
			}()
		}
	}()
}

// stop kills the daemon: in-flight connections break (clients see closed
// sockets, not timeouts) and the address stops listening.
func (d *restartableIOD) stop() {
	d.mu.Lock()
	ln := d.ln
	d.ln = nil
	conns := d.conns
	d.conns = make(map[net.Conn]struct{})
	d.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for c := range conns {
		c.Close()
	}
}

// restart rebinds the daemon's original address; false means the port was
// taken in the meantime (the caller should skip the test, not fail it).
func (d *restartableIOD) restart() bool {
	ln, err := net.Listen("tcp", d.addr)
	if err != nil {
		return false
	}
	d.serve(ln)
	return true
}

// TestRestartedIODReadmission exercises the operator story for an I/O
// server bounce on a live deployment: the same TCP client rides through the
// outage on degraded reads, and after the iod returns on its old address
// the redial path plus MarkUp re-admit it — subsequent I/O is served by the
// restarted daemon and the file stays verifiably consistent.
func TestRestartedIODReadmission(t *testing.T) {
	const servers = 3
	iods := make([]*restartableIOD, servers)
	addrs := make([]string, servers)
	for i := range iods {
		iods[i] = startIOD(t, i)
		addrs[i] = iods[i].addr
	}
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mln.Close()
	mgr := meta.New(servers, addrs)
	go func() {
		for {
			conn, err := mln.Accept()
			if err != nil {
				return
			}
			go rpc.ServeConn(conn, mgr.Handle, nil, nil) //nolint:errcheck
		}
	}()

	cl, err := csar.Dial(mln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	p := csar.DefaultPolicy()
	p.BackoffBase = time.Millisecond
	p.BackoffMax = 5 * time.Millisecond
	cl.SetResilience(p)

	f, err := cl.Create("bounce", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("readmit "), 4096) // 4 full stripes
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pre-outage read mismatch")
	}

	// Take down a data server. The same client keeps reading correct bytes
	// through the degraded reconstruction path.
	const victim = 0
	iods[victim].stop()
	cl.MarkDown(victim)
	clear(got)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("degraded read during outage: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read mismatch")
	}

	// Bounce complete: same address, same storage. MarkUp clears the manual
	// flag and the breaker/staleness state; the lazy redial does the rest.
	if !iods[victim].restart() {
		t.Skipf("cannot rebind %s after stop", iods[victim].addr)
	}
	cl.MarkUp(victim)

	before := iods[victim].srv.Requests()
	clear(got)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read after re-admission: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-restart read mismatch")
	}
	if iods[victim].srv.Requests() == before {
		t.Fatal("restarted iod served no requests; read bypassed it")
	}

	// Writes flow through the restarted daemon again, redundancy intact.
	upd := bytes.Repeat([]byte("again "), 600)
	if _, err := f.WriteAt(upd, 100); err != nil {
		t.Fatalf("write after re-admission: %v", err)
	}
	copy(data[100:], upd)
	clear(got)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back after post-restart write mismatch")
	}
	if problems, err := cl.Verify(f); err != nil || len(problems) != 0 {
		t.Fatalf("verify after bounce: %v %v", problems, err)
	}
}
