// Parallel checkpoint: the workload the paper's evaluation centres on.
// Eight ranks write a shared checkpoint file through collective I/O (the
// ROMIO-style two-phase merge), the way BTIO, FLASH and Cactus reach the
// file system — then the run is repeated under each redundancy scheme with
// the performance model enabled, printing the modeled bandwidth.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"time"

	"csar"
)

const (
	ranks     = 8
	steps     = 3
	stepBytes = 8 << 20 // per checkpoint step, deliberately not stripe-aligned
)

func main() {
	fmt.Printf("%d ranks checkpointing %d steps of %d MB (collective I/O)\n\n",
		ranks, steps, stepBytes>>20)
	fmt.Println("scheme   modeled write bandwidth")
	for _, scheme := range []csar.Scheme{csar.Raid0, csar.Raid1, csar.Raid5, csar.Hybrid} {
		bw, err := run(scheme)
		if err != nil {
			log.Fatalf("%v: %v", scheme, err)
		}
		fmt.Printf("%-8s %6.1f MB/s\n", scheme, bw)
	}
	fmt.Println("\n(the Hybrid scheme stores the unaligned step edges in its overflow")
	fmt.Println(" region instead of doing RAID5 read-modify-writes — compare raid5)")
}

func run(scheme csar.Scheme) (float64, error) {
	cluster, err := csar.NewCluster(csar.ClusterOptions{
		Servers: 8,
		Model:   csar.DefaultModel(500 * time.Millisecond),
	})
	if err != nil {
		return 0, err
	}
	defer cluster.Close()

	setup := cluster.NewClient()
	if _, err := setup.Create("ckpt", csar.FileOptions{Scheme: scheme}); err != nil {
		return 0, err
	}

	start := time.Now()
	err = csar.RunParallel(ranks, func(r *csar.Rank) error {
		client := cluster.NewClient()
		f, err := client.Open("ckpt")
		if err != nil {
			return err
		}
		// Each rank owns a slab of every step; the collective write merges
		// the slabs into large contiguous requests.
		per := int64(stepBytes / ranks)
		slab := make([]byte, per)
		for i := range slab {
			slab[i] = byte(r.ID()*steps + i)
		}
		for step := 0; step < steps; step++ {
			off := int64(step)*(stepBytes-64) + int64(r.ID())*per
			if err := r.CollectiveWrite(f, []csar.Req{{Off: off, Data: slab}}); err != nil {
				return err
			}
		}
		r.Barrier()
		if r.ID() == 0 {
			return f.Sync()
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	sim := cluster.SimElapsed(start).Seconds()
	total := float64(ranks) * float64(stepBytes/ranks) * steps
	return total / 1e6 / sim, nil
}
