// Failure and recovery: the reason the redundancy exists. This example
// writes a Hybrid file (so some data is in place under RAID5 parity and
// some is in the mirrored overflow region), kills an I/O server, reads the
// file in degraded mode, replaces the server with a blank one, rebuilds it
// from the survivors, and verifies the result — the single-disk-failure
// tolerance the paper states as CSAR's long-term objective.
//
//	go run ./examples/failure-recovery
package main

import (
	"bytes"
	"fmt"
	"log"

	"csar"
)

func main() {
	cluster, err := csar.NewCluster(csar.ClusterOptions{Servers: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient()

	f, err := client.Create("precious", csar.FileOptions{
		Scheme:     csar.Hybrid,
		StripeUnit: 16 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bulk data (full stripes, RAID5 parity) ...
	want := make([]byte, 512<<10)
	for i := range want {
		want[i] = byte(i * 31)
	}
	if _, err := f.WriteAt(want, 0); err != nil {
		log.Fatal(err)
	}
	// ... plus small unaligned updates (mirrored overflow-region writes).
	for _, off := range []int64{1000, 70_000, 333_333} {
		patch := []byte(fmt.Sprintf("#patch@%d#", off))
		if _, err := f.WriteAt(patch, off); err != nil {
			log.Fatal(err)
		}
		copy(want[off:], patch)
	}
	if err := f.Sync(); err != nil {
		log.Fatal(err)
	}

	const victim = 2
	fmt.Printf("killing I/O server %d...\n", victim)
	cluster.StopServer(victim)
	client.MarkDown(victim)

	// Degraded read: server 2's pieces are reconstructed from the other
	// servers' data + parity, then overlaid with the overflow mirror.
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		log.Fatal("degraded read returned wrong data")
	}
	fmt.Println("degraded read OK: every byte served without server", victim)

	// Degraded writes land through the redundancy: server 2's share of this
	// write is carried by parity and the overflow mirror until rebuild.
	degradedPatch := []byte("#written-while-degraded#")
	if _, err := f.WriteAt(degradedPatch, 200_000); err != nil {
		log.Fatal(err)
	}
	copy(want[200_000:], degradedPatch)
	if _, err := f.ReadAt(got, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		log.Fatal("degraded write not visible")
	}
	fmt.Println("degraded write accepted and readable (carried by redundancy)")

	// Replace the dead server with a blank one and rebuild its stores.
	fmt.Println("replacing server and rebuilding from survivors...")
	cluster.ReplaceServer(victim)
	if err := client.Rebuild(f, victim); err != nil {
		log.Fatal(err)
	}
	client.MarkUp(victim)

	// Full health check: data, parity, and overflow mirrors.
	if _, err := f.ReadAt(got, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		log.Fatal("data corrupted after rebuild")
	}
	problems, err := client.Verify(f)
	if err != nil {
		log.Fatal(err)
	}
	if len(problems) > 0 {
		log.Fatalf("inconsistent after rebuild: %v", problems)
	}
	fmt.Println("rebuild complete; file verified fully consistent")
}
