// Quickstart: start an in-process CSAR cluster, write a file under each
// redundancy scheme, read it back, and compare what each scheme stores.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"csar"
)

func main() {
	// A five-server cluster, functional mode (no performance model).
	cluster, err := csar.NewCluster(csar.ClusterOptions{Servers: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient()

	// One megabyte of recognizable data.
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}

	fmt.Println("scheme   stored(KB)  overhead  notes")
	for _, scheme := range []csar.Scheme{csar.Raid0, csar.Raid1, csar.Raid5, csar.Hybrid} {
		name := "demo-" + scheme.String()
		f, err := client.Create(name, csar.FileOptions{
			Scheme:     scheme,
			StripeUnit: 64 << 10,
		})
		if err != nil {
			log.Fatal(err)
		}

		// An aligned bulk write plus an unaligned small overwrite — the mix
		// the Hybrid scheme adapts to per write.
		if _, err := f.WriteAt(payload, 0); err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("hello, adaptive redundancy"), 100_000); err != nil {
			log.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			log.Fatal(err)
		}

		// Read back and verify.
		got := make([]byte, len(payload))
		if _, err := f.ReadAt(got, 0); err != nil {
			log.Fatal(err)
		}
		want := append([]byte(nil), payload...)
		copy(want[100_000:], "hello, adaptive redundancy")
		if !bytes.Equal(got, want) {
			log.Fatalf("%v: read-back mismatch", scheme)
		}

		// What did redundancy cost?
		total, by, err := f.StorageBytes()
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if by[3] > 0 {
			note = fmt.Sprintf("overflow holds %d KB (partial-stripe writes)", by[3]>>10)
		}
		fmt.Printf("%-8s %9d  %7.2fx  %s\n",
			scheme, total>>10, float64(total)/float64(len(want)), note)

		// And is it self-consistent? (mirror equality / parity correctness)
		problems, err := client.Verify(f)
		if err != nil {
			log.Fatal(err)
		}
		if len(problems) > 0 {
			log.Fatalf("%v: inconsistent: %v", scheme, problems)
		}
	}
	fmt.Println("\nall schemes verified consistent")
}
