// Hybrid anatomy: dissects how the Hybrid scheme handles a single
// unaligned write — the per-write adaptive decision that is the paper's
// core contribution. It prints the write plan (which byte ranges go down
// the RAID5 full-stripe path and which to the mirrored overflow region),
// performs the write, and shows the resulting server-side state, including
// the automatic migration back to RAID5 when a later full-stripe write
// supersedes the overflow data.
//
//	go run ./examples/hybrid-anatomy
package main

import (
	"fmt"
	"log"

	"csar"
	"csar/internal/core"
	"csar/internal/raid"
	"csar/internal/wire"
)

func main() {
	const servers = 4
	const su = 64 << 10 // stripe unit
	g := raid.Geometry{Servers: servers, StripeUnit: su}
	ss := g.StripeSize()
	fmt.Printf("layout: %d servers, %d KB stripe unit -> %d KB per parity stripe\n\n",
		servers, su>>10, ss>>10)

	// The write every checkpointing benchmark in the paper produces: large
	// but not stripe-aligned.
	off := int64(100_000)
	length := int64(600_000)
	fmt.Printf("write: [%d, %d) — %d KB starting mid-stripe\n\n", off, off+length, length>>10)

	plan := core.PlanWrite(g, wire.Hybrid, off, length)
	fmt.Println("hybrid write plan (Section 4's per-write rule):")
	for _, pt := range plan.Portions {
		var how string
		switch pt.Mode {
		case core.ModeFullStripe:
			how = fmt.Sprintf("RAID5: data in place + parity on server %d...",
				g.ParityServerOf(g.StripeOf(pt.Span.Off)))
		case core.ModeOverflow:
			how = "RAID1-style: data + mirror into the overflow regions (no read, no lock)"
		}
		fmt.Printf("  [%8d, %8d) %7d KB  %-12s %s\n",
			pt.Span.Off, pt.Span.End(), pt.Span.Len>>10, pt.Mode, how)
	}

	// Compare with what plain RAID5 would have to do.
	fmt.Println("\nplain RAID5 would instead read-modify-write the partial stripes:")
	for _, s := range core.PartialStripes(g, off, length) {
		fmt.Printf("  stripe %d: lock parity on server %d, read old data+parity, write back\n",
			s, g.ParityServerOf(s))
	}

	// Now actually do it and inspect the servers.
	cluster, err := csar.NewCluster(csar.ClusterOptions{Servers: servers})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient()
	f, err := client.Create("anatomy", csar.FileOptions{Scheme: csar.Hybrid, StripeUnit: su})
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, length)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := f.WriteAt(payload, off); err != nil {
		log.Fatal(err)
	}
	_, by, err := f.StorageBytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter the write, across all servers (KB): data=%d parity=%d overflow=%d ov-mirror=%d\n",
		by[0]>>10, by[2]>>10, by[3]>>10, by[4]>>10)

	// A later full-stripe write covering the whole area migrates the
	// overflow data back to RAID5 automatically.
	aligned := make([]byte, 4*ss)
	if _, err := f.WriteAt(aligned, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter a full-stripe overwrite of the same region:")
	for i := 0; i < servers; i++ {
		resp, err := client.InternalClient().ServerCaller(i).Call(
			&wire.OverflowDump{File: f.Internal().Ref()})
		if err != nil {
			log.Fatal(err)
		}
		dump := resp.(*wire.OverflowDumpResp)
		fmt.Printf("  server %d overflow table: %d live extents\n", i, len(dump.Extents))
	}
	fmt.Println("\n(the head/tail extents were invalidated by the full-stripe write —")
	fmt.Println(" the data migrated back to RAID5, exactly as Section 4 describes)")

	problems, err := client.Verify(f)
	if err != nil {
		log.Fatal(err)
	}
	if len(problems) > 0 {
		log.Fatalf("inconsistent: %v", problems)
	}
	fmt.Println("\nfile verified consistent")
}
