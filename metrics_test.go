package csar_test

import (
	"testing"

	"csar"
)

func TestMetricsTrackSchemeDecisions(t *testing.T) {
	c := newTestCluster(t, 4) // stripe = 3 * 4096
	cl := c.NewClient()
	f, err := cl.Create("m", csar.FileOptions{Scheme: csar.Hybrid, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}

	// One aligned full stripe, one small partial, one mixed write.
	f.WriteAt(make([]byte, 3*4096), 0)      // full-stripe portion only
	f.WriteAt(make([]byte, 100), 500)       // overflow portion only
	f.WriteAt(make([]byte, 2*3*4096), 6000) // overflow head + body + tail
	buf := make([]byte, 1000)
	f.ReadAt(buf, 0)

	m := cl.Metrics()
	if m.Writes != 3 || m.Reads != 1 {
		t.Fatalf("writes=%d reads=%d", m.Writes, m.Reads)
	}
	if m.WriteBytes != 3*4096+100+2*3*4096 {
		t.Fatalf("writeBytes=%d", m.WriteBytes)
	}
	if m.ReadBytes != 1000 {
		t.Fatalf("readBytes=%d", m.ReadBytes)
	}
	if m.FullStripes != 2 { // writes 1 and 3 each have one body portion
		t.Fatalf("fullStripes=%d", m.FullStripes)
	}
	if m.OverflowWrites != 3 { // write 2, plus write 3's head and tail
		t.Fatalf("overflowWrites=%d", m.OverflowWrites)
	}
	if m.RMWs != 0 || m.MirrorWrites != 0 {
		t.Fatalf("hybrid did RMW/mirror: %+v", m)
	}
}

func TestMetricsRMWAndMirror(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()

	f5, err := cl.Create("r5", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f5.WriteAt(make([]byte, 100), 0) // partial -> RMW under RAID5
	if m := cl.Metrics(); m.RMWs != 1 {
		t.Fatalf("rmws=%d", m.RMWs)
	}

	f1, err := cl.Create("r1", csar.FileOptions{Scheme: csar.Raid1, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f1.WriteAt(make([]byte, 100), 0)
	if m := cl.Metrics(); m.MirrorWrites != 1 {
		t.Fatalf("mirrorWrites=%d", m.MirrorWrites)
	}
}

func TestMetricsDegradedCounters(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("d", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 3*4096), 0)
	c.StopServer(2)
	cl.MarkDown(2)
	f.ReadAt(make([]byte, 100), 0)
	f.WriteAt(make([]byte, 100), 0)
	m := cl.Metrics()
	if m.DegradedReads != 1 || m.DegradedWrites != 1 {
		t.Fatalf("degraded reads=%d writes=%d", m.DegradedReads, m.DegradedWrites)
	}
}

func TestMetricsCompaction(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("c", csar.FileOptions{Scheme: csar.Hybrid, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 200), 10)
	if err := f.Compact(); err != nil {
		t.Fatal(err)
	}
	if m := cl.Metrics(); m.Compactions != 1 {
		t.Fatalf("compactions=%d", m.Compactions)
	}
}
