package csar_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"csar"
	"csar/internal/client"
	"csar/internal/cluster"
	"csar/internal/wire"
)

func TestMetricsTrackSchemeDecisions(t *testing.T) {
	c := newTestCluster(t, 4) // stripe = 3 * 4096
	cl := c.NewClient()
	f, err := cl.Create("m", csar.FileOptions{Scheme: csar.Hybrid, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}

	// One aligned full stripe, one small partial, one mixed write.
	f.WriteAt(make([]byte, 3*4096), 0)      // full-stripe portion only
	f.WriteAt(make([]byte, 100), 500)       // overflow portion only
	f.WriteAt(make([]byte, 2*3*4096), 6000) // overflow head + body + tail
	buf := make([]byte, 1000)
	f.ReadAt(buf, 0)

	m := cl.Metrics()
	if m.Writes != 3 || m.Reads != 1 {
		t.Fatalf("writes=%d reads=%d", m.Writes, m.Reads)
	}
	if m.WriteBytes != 3*4096+100+2*3*4096 {
		t.Fatalf("writeBytes=%d", m.WriteBytes)
	}
	if m.ReadBytes != 1000 {
		t.Fatalf("readBytes=%d", m.ReadBytes)
	}
	if m.FullStripes != 2 { // writes 1 and 3 each have one body portion
		t.Fatalf("fullStripes=%d", m.FullStripes)
	}
	if m.OverflowWrites != 3 { // write 2, plus write 3's head and tail
		t.Fatalf("overflowWrites=%d", m.OverflowWrites)
	}
	if m.RMWs != 0 || m.MirrorWrites != 0 {
		t.Fatalf("hybrid did RMW/mirror: %+v", m)
	}
}

func TestMetricsRMWAndMirror(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()

	f5, err := cl.Create("r5", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f5.WriteAt(make([]byte, 100), 0) // partial -> RMW under RAID5
	if m := cl.Metrics(); m.RMWs != 1 {
		t.Fatalf("rmws=%d", m.RMWs)
	}

	f1, err := cl.Create("r1", csar.FileOptions{Scheme: csar.Raid1, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f1.WriteAt(make([]byte, 100), 0)
	if m := cl.Metrics(); m.MirrorWrites != 1 {
		t.Fatalf("mirrorWrites=%d", m.MirrorWrites)
	}
}

func TestMetricsDegradedCounters(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("d", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 3*4096), 0)
	c.StopServer(2)
	cl.MarkDown(2)
	f.ReadAt(make([]byte, 100), 0)
	f.WriteAt(make([]byte, 100), 0)
	m := cl.Metrics()
	if m.DegradedReads != 1 || m.DegradedWrites != 1 {
		t.Fatalf("degraded reads=%d writes=%d", m.DegradedReads, m.DegradedWrites)
	}
}

func TestMetricsCompaction(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("c", csar.FileOptions{Scheme: csar.Hybrid, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 200), 10)
	if err := f.Compact(); err != nil {
		t.Fatal(err)
	}
	if m := cl.Metrics(); m.Compactions != 1 {
		t.Fatalf("compactions=%d", m.Compactions)
	}
}

// TestMetricsResyncCounters drives the dirty-log/resync machinery through
// the public API and checks its four counters: DirtyUnits (damage logged by
// degraded writes), ResyncedUnits (items replayed), ResyncForwards (writes
// forwarded behind the sync-point cursor), and FullRebuildFallbacks (resyncs
// that could not trust the log).
func TestMetricsResyncCounters(t *testing.T) {
	c := newTestCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("r", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}

	const dead = 2
	c.StopServer(dead)
	cl.MarkDown(dead)
	if _, err := f.WriteAt(make([]byte, 256), 0); err != nil {
		t.Fatal(err)
	}
	if m := cl.Metrics(); m.DirtyUnits == 0 {
		t.Fatalf("DirtyUnits = 0 after a degraded write: %+v", m)
	}
	c.RestartServer(dead)

	// A write behind the sync-point cursor is forwarded, not re-logged.
	ic := cl.InternalClient()
	ref := f.Internal().Ref()
	ic.BeginResync(ref.ID, dead)
	ic.AdvanceResyncCursor(ref.ID, dead, math.MaxInt64)
	if _, err := f.WriteAt(make([]byte, 256), 1024); err != nil {
		t.Fatal(err)
	}
	ic.EndResync(ref.ID, dead)
	if m := cl.Metrics(); m.ResyncForwards != 1 {
		t.Fatalf("ResyncForwards = %d, want 1", m.ResyncForwards)
	}

	rep, err := cl.Resync(f, dead, csar.ResyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics()
	if m.ResyncedUnits == 0 || m.ResyncedUnits != rep.Items() {
		t.Fatalf("ResyncedUnits = %d, report items = %d", m.ResyncedUnits, rep.Items())
	}
	if m.FullRebuildFallbacks != 0 {
		t.Fatalf("FullRebuildFallbacks = %d before any fallback", m.FullRebuildFallbacks)
	}
	cl.MarkUp(dead)

	// Wipe one replica's log mid-outage: the next resync cannot trust the
	// epochs and must fall back to a full rebuild.
	c.StopServer(dead)
	cl.MarkDown(dead)
	if _, err := f.WriteAt(make([]byte, 256), 0); err != nil {
		t.Fatal(err)
	}
	c.RestartServer(dead)
	r := client.DirtyReplicas(c.Servers(), dead)[0]
	if _, err := c.Internal().Server(r).Handle(&wire.ClearDirty{File: ref, Dead: uint16(dead), All: true}); err != nil {
		t.Fatal(err)
	}
	rep, err = cl.Resync(f, dead, csar.ResyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullRebuild {
		t.Fatalf("resync with a wiped replica did not fall back: %+v", rep)
	}
	if m := cl.Metrics(); m.FullRebuildFallbacks != 1 {
		t.Fatalf("FullRebuildFallbacks = %d, want 1", m.FullRebuildFallbacks)
	}
	cl.MarkUp(dead)
	if problems, err := cl.Verify(f); err != nil || len(problems) != 0 {
		t.Fatalf("verify: %v %v", problems, err)
	}
}

// TestMetricsLeaseAndIntent drives the write-hole machinery end to end and
// checks the four crash-consistency counters. Phase one stalls an RMW while
// the heartbeat keeps its parity-lock lease alive (LeaseRenewals). Phase
// two stalls an RMW with the heartbeat off so the server expires the lease
// (LeaseExpiries), then replays the abandoned stripe intent
// (IntentsAbandoned, IntentsReplayed).
func TestMetricsLeaseAndIntent(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	ic := c.Internal()

	// Phase 1: a healthy heartbeat over a stalled RMW.
	p := csar.DefaultPolicy()
	p.CallTimeout = 0 // hangs must block, not time out
	p.Retries = 2     // the hung read succeeds on its post-release retry
	p.BackoffBase = time.Millisecond
	p.BackoffMax = 2 * time.Millisecond
	p.LockLease = 500 * time.Millisecond
	p.LeaseRenewEvery = 20 * time.Millisecond
	p.CrashSafeRMW = true
	cl.SetResilience(p)

	fa, err := cl.Create("lease-a", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 64})
	if err != nil {
		t.Fatal(err)
	}
	ga := fa.Internal().Geometry()
	if _, err := fa.WriteAt(make([]byte, 3*64), 0); err != nil {
		t.Fatal(err)
	}
	firstA, _ := ga.DataUnitsOf(0)
	hang := ic.Inject(cluster.FaultPoint{
		Server: ga.ServerOf(firstA), Kind: wire.KRead, Action: cluster.FaultHang,
	})
	done := make(chan error, 1)
	go func() {
		_, werr := fa.WriteAt(make([]byte, 10), 0)
		done <- werr
	}()
	<-hang.Triggered()
	deadline := time.Now().Add(10 * time.Second)
	for cl.Metrics().LeaseRenewals < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("leaseRenewals stuck at %d", cl.Metrics().LeaseRenewals)
		}
		time.Sleep(2 * time.Millisecond)
	}
	hang.Release()
	if werr := <-done; werr != nil {
		t.Fatalf("RMW failed despite live heartbeat: %v", werr)
	}
	m := cl.Metrics()
	if m.LeaseRenewals < 2 || m.LeaseExpiries != 0 {
		t.Fatalf("after phase 1: renewals=%d expiries=%d", m.LeaseRenewals, m.LeaseExpiries)
	}

	// Phase 2: heartbeat off, short lease — the server revokes the lock
	// under the stalled RMW and the unlocking parity write is fenced.
	p.LockLease = 40 * time.Millisecond
	p.LeaseRenewEvery = -1
	cl.SetResilience(p)

	fb, err := cl.Create("lease-b", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 64})
	if err != nil {
		t.Fatal(err)
	}
	gb := fb.Internal().Geometry()
	if _, err := fb.WriteAt(make([]byte, 3*64), 0); err != nil {
		t.Fatal(err)
	}
	firstB, _ := gb.DataUnitsOf(0)
	hang = ic.Inject(cluster.FaultPoint{
		Server: gb.ServerOf(firstB), Kind: wire.KRead, Action: cluster.FaultHang,
	})
	go func() {
		_, werr := fb.WriteAt(make([]byte, 10), 0)
		done <- werr
	}()
	<-hang.Triggered()
	// Wait for the server-side expiry (the intent flips to abandoned).
	ps := gb.ParityServerOf(0)
	for {
		resp, lerr := cl.InternalClient().ServerCaller(ps).Call(&wire.ListIntents{File: fb.Internal().Ref()})
		if lerr != nil {
			t.Fatal(lerr)
		}
		ints := resp.(*wire.ListIntentsResp).Intents
		if len(ints) == 1 && ints[0].Abandoned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired server-side: %+v", ints)
		}
		time.Sleep(2 * time.Millisecond)
	}
	hang.Release()
	if werr := <-done; !errors.Is(werr, csar.ErrLeaseExpired) {
		t.Fatalf("stalled RMW returned %v, want ErrLeaseExpired", werr)
	}
	if m := cl.Metrics(); m.LeaseExpiries != 1 {
		t.Fatalf("leaseExpiries=%d, want 1", m.LeaseExpiries)
	}

	// The stripe is fail-stopped until replay reconciles it.
	if _, werr := fb.WriteAt(make([]byte, 10), 0); !errors.Is(werr, csar.ErrStripeTorn) {
		t.Fatalf("RMW on torn stripe: %v, want ErrStripeTorn", werr)
	}
	rep, err := cl.ReplayIntents(fb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.Abandoned != 1 {
		t.Fatalf("replay report: %+v", rep)
	}
	m = cl.Metrics()
	if m.IntentsReplayed != 1 || m.IntentsAbandoned != 1 {
		t.Fatalf("intent metrics: replayed=%d abandoned=%d", m.IntentsReplayed, m.IntentsAbandoned)
	}
	if problems, err := cl.Verify(fb); err != nil || len(problems) != 0 {
		t.Fatalf("verify after replay: %v %v", problems, err)
	}
	if _, err := fb.WriteAt(make([]byte, 10), 0); err != nil {
		t.Fatalf("RMW after replay: %v", err)
	}
}
