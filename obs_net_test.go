package csar_test

import (
	"bytes"
	"net"
	"os"
	"strings"
	"testing"

	"csar"
	"csar/internal/meta"
	"csar/internal/rpc"
	"csar/internal/server"
	"csar/internal/simdisk"
)

// startTCPCluster brings up n loopback-TCP I/O daemons (served through the
// traced handler, as csar-iod does) plus a manager, and returns the manager
// address plus the server handles.
func startTCPCluster(t *testing.T, n int) (mgrAddr string, srvs []*server.Server) {
	t.Helper()
	addrs := make([]string, n)
	srvs = make([]*server.Server, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		srv := server.New(i, simdisk.New(nil, simdisk.Params{PageSize: 4096}), server.DefaultOptions())
		srvs[i] = srv
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go rpc.ServeConnTraced(conn, srv.HandleTraced, nil, nil) //nolint:errcheck
			}
		}()
	}
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mln.Close() })
	mgr := meta.New(n, addrs)
	go func() {
		for {
			conn, err := mln.Accept()
			if err != nil {
				return
			}
			go rpc.ServeConn(conn, mgr.Handle, nil, nil) //nolint:errcheck
		}
	}()
	return mln.Addr().String(), srvs
}

func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	return len(ents)
}

// TestDialCloseNoFDLeak is the regression test for the csar-mgr background
// loops: they Dial a short-lived client every tick, so Client.Close must
// release every descriptor the dial and the per-server lazy connections
// opened. Before Close existed the loops leaked one connection set per
// tick and a long-lived manager ran out of fds.
func TestDialCloseNoFDLeak(t *testing.T) {
	mgrAddr, _ := startTCPCluster(t, 3)

	// One warm-up pass so any lazy global state (resolver etc.) is counted
	// in the baseline.
	pass := func() {
		cl, err := csar.Dial(mgrAddr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.List(); err != nil {
			t.Fatal(err)
		}
		// Touch every iod so the lazy per-server connections actually open.
		if _, err := cl.StorageTotals(); err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	pass()

	before := countFDs(t)
	for i := 0; i < 30; i++ {
		pass()
	}
	after := countFDs(t)
	// TCP sockets can linger briefly in the kernel after Close returns;
	// allow tiny slack, but 30 passes × 4 conns would leak ~120 fds.
	if after > before+4 {
		t.Fatalf("fd leak across dial/close passes: %d before, %d after", before, after)
	}
}

// TestStatsOverLiveCluster drives real I/O through a 4-iod TCP deployment
// and checks the observability pipeline end to end: the client's own op
// histograms fill, every server answers the Stats RPC with nonzero per-RPC
// histograms, and the merged view renders.
func TestStatsOverLiveCluster(t *testing.T) {
	mgrAddr, _ := startTCPCluster(t, 4)
	cl, err := csar.Dial(mgrAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	f, err := cl.Create("obs", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	full := bytes.Repeat([]byte("stripe! "), 3*4096/8) // whole stripes (3 data units)
	if _, err := f.WriteAt(full, 0); err != nil {
		t.Fatal(err)
	}
	small := []byte("partial")
	if _, err := f.WriteAt(small, 0); err != nil { // RMW path
		t.Fatal(err)
	}
	got := make([]byte, len(full))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}

	// Client side: per-op and per-path histograms must have counts.
	own := cl.Stats()
	for _, name := range []string{"op_write", "op_read", "op_write_full_stripe", "op_write_rmw"} {
		if h, ok := own.Hist(name); !ok || h.Count == 0 {
			t.Errorf("client histogram %s has no observations", name)
		}
	}
	if h, ok := own.Hist("rpc_write_data"); !ok || h.Count == 0 {
		t.Errorf("client rpc histogram rpc_write_data has no observations; have %v", histNames(own))
	}

	// Server side: all four answer Stats with requests and rpc histograms.
	srvStats := cl.ServerStats()
	if len(srvStats) != 4 {
		t.Fatalf("ServerStats returned %d entries, want 4", len(srvStats))
	}
	for i, sr := range srvStats {
		if sr.Requests <= 0 {
			t.Fatalf("server %d: Requests = %d (unreachable?)", i, sr.Requests)
		}
		snap := csar.StatsOfServer(sr)
		if v := counterValue(snap.Counters, "bytes_in"); v == 0 {
			t.Errorf("server %d: bytes_in counter is zero", i)
		}
		any := false
		for _, h := range snap.Hists {
			if strings.HasPrefix(h.Name, "rpc_") && h.Count > 0 {
				any = true
				break
			}
		}
		if !any {
			t.Errorf("server %d: no nonzero rpc_* histogram in Stats reply", i)
		}
	}

	// The merged view must aggregate across servers.
	var snaps []csar.Stats
	for _, sr := range srvStats {
		snaps = append(snaps, csar.StatsOfServer(sr))
	}
	merged := csar.MergeStats(snaps...)
	if h, ok := merged.Hist("rpc_write_data"); !ok || h.Count == 0 {
		t.Error("merged server stats lost the rpc_write_data histogram")
	}
}

func histNames(s csar.Stats) []string {
	names := make([]string, len(s.Hists))
	for i, h := range s.Hists {
		names[i] = h.Name
	}
	return names
}

func counterValue(kvs []csar.KV, name string) int64 {
	for _, kv := range kvs {
		if kv.Name == name {
			return kv.Value
		}
	}
	return 0
}
