package csar

import (
	"fmt"
	"io"
)

// Stream is a sequential cursor over a CSAR file implementing io.Reader,
// io.Writer, io.Seeker and io.Closer — the interface sequential
// applications (like the paper's Hartree-Fock code, which writes its
// integral file front to back in 16 KB requests) expect. Close flushes the
// file. A Stream is not safe for concurrent use; open one per goroutine.
type Stream struct {
	f   *File
	pos int64
}

// Stream returns a sequential cursor positioned at the start of the file.
func (f *File) Stream() *Stream { return &Stream{f: f} }

// Read reads from the current position, returning io.EOF at the file's
// logical size.
func (s *Stream) Read(p []byte) (int, error) {
	size := s.f.Size()
	if s.pos >= size {
		return 0, io.EOF
	}
	if max := size - s.pos; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := s.f.ReadAt(p, s.pos)
	s.pos += int64(n)
	return n, err
}

// Write writes at the current position, advancing it.
func (s *Stream) Write(p []byte) (int, error) {
	n, err := s.f.WriteAt(p, s.pos)
	s.pos += int64(n)
	return n, err
}

// Seek repositions the cursor per the io.Seeker contract.
func (s *Stream) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = s.pos
	case io.SeekEnd:
		base = s.f.Size()
	default:
		return 0, fmt.Errorf("csar: invalid seek whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("csar: seek to negative offset %d", np)
	}
	s.pos = np
	return np, nil
}

// Close flushes the file's server-side stores; the stream remains usable
// (closing a PVFS file descriptor does not invalidate others).
func (s *Stream) Close() error { return s.f.Sync() }

var (
	_ io.Reader = (*Stream)(nil)
	_ io.Writer = (*Stream)(nil)
	_ io.Seeker = (*Stream)(nil)
	_ io.Closer = (*Stream)(nil)
)
