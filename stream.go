package csar

import (
	"fmt"
	"io"

	"csar/internal/client"
)

// Stream is a sequential cursor over a CSAR file implementing io.Reader,
// io.Writer, io.Seeker and io.Closer — the interface sequential
// applications (like the paper's Hartree-Fock code, which writes its
// integral file front to back in 16 KB requests) expect. Close flushes the
// file. A Stream is not safe for concurrent use; open one per goroutine.
type Stream struct {
	f   *File
	pos int64

	depth int
	win   *client.Window

	// pending holds a pipelined-write error consumed by an internal Flush
	// (mode switch, seek) before the caller saw it; the next Write, Flush or
	// Close surfaces it.
	pending error
}

// Stream returns a sequential cursor positioned at the start of the file.
func (f *File) Stream() *Stream { return &Stream{f: f} }

// Read reads from the current position, returning io.EOF at the file's
// logical size.
func (s *Stream) Read(p []byte) (int, error) {
	if err := s.Flush(); err != nil { // read-your-writes past the window
		return 0, err
	}
	size := s.f.Size()
	if s.pos >= size {
		return 0, io.EOF
	}
	if max := size - s.pos; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := s.f.ReadAt(p, s.pos)
	s.pos += int64(n)
	return n, err
}

// SetWriteWindow enables pipelined writes: up to depth Writes are kept in
// flight at once instead of each waiting out its stripe round trip, the
// same bounded-window overlap the collective-I/O aggregators use.
// Sequential writes cover disjoint ranges, and writes sharing a boundary
// stripe serialize through the parity lock, so ordering does not affect
// the result. Errors surface on a later Write, Flush, or Close rather than
// the Write that caused them. depth <= 1 restores synchronous writes.
func (s *Stream) SetWriteWindow(depth int) {
	// The drain's error must not vanish with the window: stash it so the
	// next Write, Flush or Close reports it even after win is replaced.
	if err := s.Flush(); err != nil && s.pending == nil {
		s.pending = err
	}
	if depth <= 1 {
		s.depth, s.win = 0, nil
		return
	}
	s.depth = depth
	s.win = client.NewWindow(depth)
}

// Write writes at the current position, advancing it. With a write window
// set, the write is issued asynchronously and p is copied first (the
// io.Writer contract lets the caller reuse p immediately).
func (s *Stream) Write(p []byte) (int, error) {
	if s.pending != nil {
		return 0, s.Flush()
	}
	if s.win == nil {
		n, err := s.f.WriteAt(p, s.pos)
		s.pos += int64(n)
		return n, err
	}
	if s.win.Failed() {
		return 0, s.Flush()
	}
	buf := append([]byte(nil), p...)
	off := s.pos
	s.win.Go(func() error {
		_, err := s.f.WriteAt(buf, off)
		return err
	})
	s.pos += int64(len(p))
	return len(p), nil
}

// Flush drains any in-flight pipelined writes and returns their first
// error — including one stashed by an earlier internal drain (mode switch
// or seek). A no-op for synchronous streams with nothing pending.
func (s *Stream) Flush() error {
	if err := s.pending; err != nil {
		s.pending = nil
		return err
	}
	if s.win == nil {
		return nil
	}
	err := s.win.Wait()
	if err != nil {
		// The window is poisoned by its sticky error; start a fresh one.
		s.win = client.NewWindow(s.depth)
	}
	return err
}

// Seek repositions the cursor per the io.Seeker contract. An active write
// window is drained first: a backward seek plus rewrite would otherwise
// race in-flight pipelined writes over the same range, violating the
// disjoint-range invariant the window relies on. A drain failure surfaces
// here and leaves the position unchanged.
func (s *Stream) Seek(offset int64, whence int) (int64, error) {
	if err := s.Flush(); err != nil {
		return s.pos, err
	}

	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = s.pos
	case io.SeekEnd:
		base = s.f.Size()
	default:
		return 0, fmt.Errorf("csar: invalid seek whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("csar: seek to negative offset %d", np)
	}
	s.pos = np
	return np, nil
}

// Close drains any pipelined writes and flushes the file's server-side
// stores; the stream remains usable (closing a PVFS file descriptor does
// not invalidate others).
func (s *Stream) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

var (
	_ io.Reader = (*Stream)(nil)
	_ io.Writer = (*Stream)(nil)
	_ io.Seeker = (*Stream)(nil)
	_ io.Closer = (*Stream)(nil)
)
