// Package csar is a Go implementation of CSAR — Cluster Storage with
// Adaptive Redundancy — the striped cluster file system with hybrid
// RAID1/RAID5 redundancy described in:
//
//	Manoj Pillai and Mario Lauria. "A High Performance Redundancy Scheme
//	for Cluster File Systems". IEEE CLUSTER 2003.
//
// CSAR extends a PVFS-style striped file system (manager + I/O servers +
// direct client/server data paths) with four redundancy schemes:
//
//   - Raid0: plain striping, no redundancy (stock PVFS);
//   - Raid1: striped block mirroring onto the next server;
//   - Raid5: rotating parity with a distributed parity lock for
//     partial-stripe consistency;
//   - Hybrid: the paper's contribution — per-write adaptive redundancy
//     that stores full stripes as RAID5 and partial-stripe portions as
//     mirrored writes into an overflow region, giving RAID1 performance
//     for small writes and RAID5 efficiency for large ones;
//   - ReedSolomon: RS(k, m) erasure coding over GF(256) — m rotating
//     parity units per stripe, any-k-of-(k+m) reconstruction, tolerating
//     m simultaneous server failures.
//
// # Quick start
//
//	cluster, _ := csar.NewCluster(csar.ClusterOptions{Servers: 5})
//	defer cluster.Close()
//	client := cluster.NewClient()
//	f, _ := client.Create("data", csar.FileOptions{Scheme: csar.Hybrid})
//	f.WriteAt(payload, 0)
//	f.Sync()
//
// Clusters can run untimed (pure functionality) or with the performance
// model enabled (ClusterOptions.Model), which reproduces the bandwidth
// behaviour of the paper's testbed: per-node NIC limits, disk seek and
// transfer costs, and a server page cache with the Linux partial-block
// write behaviour of Section 5.2.
package csar

import (
	"sync"
	"time"

	"csar/internal/cluster"
	"csar/internal/simdisk"
	"csar/internal/simnet"
	"csar/internal/simtime"
	"csar/internal/wire"
)

// Scheme selects a redundancy scheme.
type Scheme = wire.Scheme

// The redundancy schemes. Raid5NoLock and Raid5NPC are instrumented
// variants used by the paper's microbenchmarks (lock overhead and parity
// CPU cost); ReedSolomon generalizes Raid5's single XOR parity to RS(k, m)
// erasure coding over GF(256), tolerating FileOptions.ParityUnits
// simultaneous failures.
const (
	Raid0       = wire.Raid0
	Raid1       = wire.Raid1
	Raid5       = wire.Raid5
	Hybrid      = wire.Hybrid
	Raid5NoLock = wire.Raid5NoLock
	Raid5NPC    = wire.Raid5NPC
	ReedSolomon = wire.ReedSolomon
)

// ParseScheme converts a scheme name to a Scheme; SchemeNames lists the
// accepted names.
func ParseScheme(name string) (Scheme, error) { return wire.ParseScheme(name) }

// SchemeNames returns every scheme's parseable name, in scheme order.
func SchemeNames() []string { return wire.SchemeNames() }

// Model configures the performance model of an in-process cluster.
type Model struct {
	// ScalePerSimSecond is the wall-clock duration of one simulated
	// second. Zero disables all timing (functional mode).
	ScalePerSimSecond time.Duration
	// NICBandwidth is each node's per-direction network bandwidth in
	// bytes per simulated second (default: 160 MB/s, Myrinet-class).
	NICBandwidth float64
	// NetLatency is the one-way message latency (default 20µs).
	NetLatency time.Duration
	// DiskBandwidth is each server disk's transfer rate in bytes per
	// simulated second (default 70 MB/s).
	DiskBandwidth float64
	// DiskSeek is the per-access positioning time (default 500µs).
	DiskSeek time.Duration
	// ServerCacheBytes is each server's page cache capacity
	// (default 256 MiB; the paper's nodes had 1 GiB of RAM).
	ServerCacheBytes int64
	// PageSize is the local file system block size (default 4 KiB).
	PageSize int
	// XORBandwidth is the clients' parity-computation throughput in bytes
	// per simulated second (default 2 GB/s, calibrated so that parity
	// computation costs about 8% of a full-stripe RAID5 write, the
	// RAID5-npc gap of Figure 4a).
	XORBandwidth float64
	// ServerRequestCPU is the I/O daemon's per-request processing cost,
	// charged serially as in PVFS's single-threaded iod event loop
	// (default 1ms — a 1 GHz Pentium III iod handling a socket request).
	ServerRequestCPU time.Duration
	// ClientRequestCPU is the client-side cost of issuing one I/O-server
	// request — the PVFS library, kernel and TCP path (default 600µs).
	ClientRequestCPU time.Duration
}

// DefaultModel returns the testbed-like model parameters at the given time
// scale.
func DefaultModel(scale time.Duration) Model {
	return Model{
		ScalePerSimSecond: scale,
		NICBandwidth:      simnet.DefaultParams().BandwidthBPS,
		NetLatency:        simnet.DefaultParams().Latency,
		DiskBandwidth:     simdisk.DefaultParams().ReadBW,
		DiskSeek:          simdisk.DefaultParams().SeekTime,
		ServerCacheBytes:  simdisk.DefaultParams().CacheBytes,
		PageSize:          simdisk.DefaultParams().PageSize,
		XORBandwidth:      2e9,
		ServerRequestCPU:  time.Millisecond,
		ClientRequestCPU:  600 * time.Microsecond,
	}
}

// ClusterOptions configures an in-process cluster.
type ClusterOptions struct {
	// Servers is the number of I/O servers (required, >= 1; parity
	// schemes need >= 3).
	Servers int
	// Model enables and configures the performance model. The zero value
	// runs untimed over direct in-process calls; a non-zero
	// ScalePerSimSecond switches to the full RPC stack with simulated
	// NICs and disks.
	Model Model
	// WriteBuffering toggles the Section 5.2 server-side write buffering
	// fix. Nil means enabled (the paper runs all experiments with it).
	WriteBuffering *bool
}

// Cluster is an in-process CSAR deployment.
type Cluster struct {
	inner *cluster.Cluster
	clock *simtime.Clock

	mu      sync.Mutex
	clients []*Client
}

// NewCluster starts a cluster.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	cfg := cluster.DefaultConfig(opts.Servers)
	var clock *simtime.Clock
	if opts.Model.ScalePerSimSecond > 0 {
		m := opts.Model
		def := DefaultModel(m.ScalePerSimSecond)
		if m.NICBandwidth == 0 {
			m.NICBandwidth = def.NICBandwidth
		}
		if m.NetLatency == 0 {
			m.NetLatency = def.NetLatency
		}
		if m.DiskBandwidth == 0 {
			m.DiskBandwidth = def.DiskBandwidth
		}
		if m.DiskSeek == 0 {
			m.DiskSeek = def.DiskSeek
		}
		if m.ServerCacheBytes == 0 {
			m.ServerCacheBytes = def.ServerCacheBytes
		}
		if m.PageSize == 0 {
			m.PageSize = def.PageSize
		}
		if m.XORBandwidth == 0 {
			m.XORBandwidth = def.XORBandwidth
		}
		if m.ServerRequestCPU == 0 {
			m.ServerRequestCPU = def.ServerRequestCPU
		}
		if m.ClientRequestCPU == 0 {
			m.ClientRequestCPU = def.ClientRequestCPU
		}
		clock = &simtime.Clock{Scale: m.ScalePerSimSecond}
		cfg.Transport = cluster.Pipe
		cfg.Clock = clock
		cfg.XORBandwidth = m.XORBandwidth
		cfg.ServerOpts.RequestCPU = m.ServerRequestCPU
		cfg.ClientRequestCPU = m.ClientRequestCPU
		cfg.Net = simnet.Params{Latency: m.NetLatency, BandwidthBPS: m.NICBandwidth}
		cfg.Disk = simdisk.Params{
			PageSize:   m.PageSize,
			CacheBytes: m.ServerCacheBytes,
			SeekTime:   m.DiskSeek,
			ReadBW:     m.DiskBandwidth,
			WriteBW:    m.DiskBandwidth,
		}
	} else if opts.Model.PageSize != 0 {
		cfg.Disk.PageSize = opts.Model.PageSize
	}
	if opts.WriteBuffering != nil {
		cfg.ServerOpts.WriteBuffering = *opts.WriteBuffering
	}
	inner, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner, clock: clock}, nil
}

// Servers returns the number of I/O servers.
func (c *Cluster) Servers() int { return c.inner.Servers() }

// NewClient attaches a new client (its own NIC under the performance
// model).
func (c *Cluster) NewClient() *Client {
	cl := &Client{inner: c.inner.NewClient()}
	c.mu.Lock()
	c.clients = append(c.clients, cl)
	c.mu.Unlock()
	return cl
}

// ClientStats merges the observability snapshots of every client this
// cluster has handed out: one view of op latencies and counters across the
// whole run, however many clients the workload used.
func (c *Cluster) ClientStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	snaps := make([]Stats, len(c.clients))
	for i, cl := range c.clients {
		snaps[i] = cl.Stats()
	}
	return MergeStats(snaps...)
}

// StopServer simulates the failure of server i: all requests to it fail
// until it is restarted or replaced.
func (c *Cluster) StopServer(i int) { c.inner.StopServer(i) }

// RestartServer brings a stopped server back with its storage intact.
func (c *Cluster) RestartServer(i int) { c.inner.RestartServer(i) }

// ReplaceServer swaps server i for a blank one (a new disk after a crash);
// use Client.Rebuild to reconstruct its contents.
func (c *Cluster) ReplaceServer(i int) { c.inner.ReplaceServer(i) }

// TotalStorage sums the bytes stored on all servers (Table 2's metric).
func (c *Cluster) TotalStorage() int64 { return c.inner.TotalStorage() }

// DropCaches empties every server's page cache, as the paper does between
// the initial-write and overwrite phases of its experiments.
func (c *Cluster) DropCaches() { c.inner.DropAllCaches() }

// ServerDiskStats returns the modeled disk counters of server i (physical
// reads/writes, cache hits/misses, forced partial-page reads).
func (c *Cluster) ServerDiskStats(i int) simdisk.Stats {
	return c.inner.ServerDisk(i).Stats()
}

// SimElapsed converts wall time since start into simulated time under the
// cluster's model; it returns zero for untimed clusters.
func (c *Cluster) SimElapsed(start time.Time) time.Duration {
	return c.clock.SimSince(start)
}

// Timed reports whether the performance model is enabled.
func (c *Cluster) Timed() bool { return c.clock.Timed() }

// ModelDelay blocks for the given simulated duration under the cluster's
// model (a no-op when untimed). Workload generators use it for costs
// outside the file system proper, such as the PVFS kernel-module crossing
// overhead in the Hartree-Fock experiment.
func (c *Cluster) ModelDelay(sim time.Duration) { c.clock.Sleep(sim) }

// Close tears down the cluster's connections.
func (c *Cluster) Close() { c.inner.Close() }

// DefaultStripeUnit is the stripe unit used when FileOptions does not set
// one: 64 KiB, PVFS's default stripe size.
const DefaultStripeUnit = 64 << 10

// FileOptions configures a new file.
type FileOptions struct {
	// Servers is the number of I/O servers to stripe over; zero means all.
	Servers int
	// StripeUnit is the stripe unit size in bytes (default 64 KiB).
	StripeUnit int64
	// Scheme is the redundancy scheme (default Raid0).
	Scheme Scheme
	// ParityUnits is the number of parity units per stripe for the
	// ReedSolomon scheme — the m of RS(k, m), with k = Servers - m data
	// units. Zero means 2 (double-fault tolerance). Other schemes reject a
	// non-zero value.
	ParityUnits int
}

// ServerRequests returns the number of requests I/O server i has handled.
func (c *Cluster) ServerRequests(i int) int64 {
	return c.inner.Server(i).Requests()
}

// CrashServer kills server i's process: RAM state (parity locks, lease
// timers) is lost, the disk survives. RestartServer completes the restart;
// the fresh instance reloads its stripe intent journal, so stripes that
// were mid-update come back fail-stopped awaiting Client.ReplayIntents.
func (c *Cluster) CrashServer(i int) { c.inner.CrashServer(i) }

// Internal returns the underlying cluster; the test and benchmark
// harnesses in this repository use it, applications should not.
func (c *Cluster) Internal() *cluster.Cluster { return c.inner }
