package csar

import (
	"context"
	"errors"

	"csar/internal/client"
	"csar/internal/cluster"
	"csar/internal/obs"
	"csar/internal/recovery"
	"csar/internal/scrub"
	"csar/internal/wire"
)

// ErrDegradedWrite is returned when writing a Raid0 file while a server is
// marked down; the redundant schemes accept degraded writes, carrying the
// failed server's share in the mirror, parity, or overflow mirror until
// Rebuild.
var ErrDegradedWrite = client.ErrDegradedWrite

// ErrNoRedundancy is returned when recovering or degraded-reading a Raid0
// file: stock striping stores nothing to recover from.
var ErrNoRedundancy = client.ErrNoRedundancy

// Client is one mount of a CSAR file system: a connection to the manager
// plus direct connections to every I/O server.
type Client struct {
	inner *client.Client
}

// Create makes a new file.
func (c *Client) Create(name string, opts FileOptions) (*File, error) {
	if opts.Servers == 0 {
		opts.Servers = c.inner.NumServers()
	}
	if opts.StripeUnit == 0 {
		opts.StripeUnit = DefaultStripeUnit
	}
	f, err := c.inner.CreateParity(name, opts.Servers, opts.StripeUnit, opts.Scheme, opts.ParityUnits)
	if err != nil {
		return nil, err
	}
	return &File{inner: f}, nil
}

// Open opens an existing file by name.
func (c *Client) Open(name string) (*File, error) {
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &File{inner: f}, nil
}

// Remove deletes a file and all its server-side stores.
func (c *Client) Remove(name string) error { return c.inner.Remove(name) }

// List returns the names of all files.
func (c *Client) List() ([]string, error) { return c.inner.List() }

// MarkDown tells the client server i has failed; subsequent reads use the
// file's redundancy (degraded mode).
func (c *Client) MarkDown(i int) { c.inner.MarkDown(i) }

// MarkUp clears the failure flag for server i (after rebuild).
func (c *Client) MarkUp(i int) { c.inner.MarkUp(i) }

// Rebuild reconstructs failed server dead's stores for the file from the
// survivors, after the cluster has replaced it with a blank server.
func (c *Client) Rebuild(f *File, dead int) error {
	return recovery.Rebuild(c.inner, f.inner, dead)
}

// ResyncOptions tunes an online incremental resync pass.
type ResyncOptions = recovery.ResyncOptions

// ResyncReport describes what a resync pass replayed (or, dry, would
// replay).
type ResyncReport = recovery.ResyncReport

// ErrResyncAborted is returned when a resync pass could not finish; the
// dirty log is left intact and re-running Resync will converge.
var ErrResyncAborted = recovery.ErrResyncAborted

// Resync brings a returning server back up to date for the file by
// replaying only the regions degraded writes damaged while it was out
// (recorded in the dirty-region log on its neighbours), falling back to a
// full Rebuild when the log cannot be trusted. It runs online — foreground
// writes through this client are coordinated with the replay — and, unlike
// Rebuild, targets a server that came back with its pre-outage stores
// intact. Call MarkUp once it returns nil.
func (c *Client) Resync(f *File, dead int, opts ResyncOptions) (ResyncReport, error) {
	return recovery.Resync(c.inner, f.inner, dead, opts)
}

// MigrateOptions tunes an online scheme migration (rate limit, copy chunk
// size, time base).
type MigrateOptions = recovery.MigrateOptions

// MigrateReport describes a completed migration: schemes, the file's new
// ID, and the logical bytes re-encoded.
type MigrateReport = recovery.MigrateReport

// ErrMigrationAborted is returned when a migration pass could not finish.
// The target stays pinned at the manager: re-running Migrate with the same
// target resumes it, and AbortMigration discards it.
var ErrMigrationAborted = recovery.ErrMigrationAborted

// Migrate transitions a live file to a different redundancy scheme online
// ("re-layout under writers"): the manager pins a shadow layout, the
// file's bytes are re-encoded into it in rate-limited chunks while reads
// and writes through this client continue, and a single replicated
// metadata operation cuts the file over. parity is the RS(k, m)
// parity-unit count (0 = manager default); non-RS targets take 0. After a
// successful return f operates on the new layout; other clients must
// reopen the file. Interrupted migrations resume on re-run and survive
// manager failover.
func (c *Client) Migrate(f *File, scheme Scheme, parity int, opts MigrateOptions) (MigrateReport, error) {
	return recovery.Migrate(c.inner, f.inner, scheme, parity, opts)
}

// AbortMigration discards the migration target pinned for file name, if
// any, along with the partial shadow stores.
func (c *Client) AbortMigration(name string) error {
	return recovery.AbortMigration(c.inner, name)
}

// DirtyServers returns the servers with outstanding dirty-region logs for
// the file — those that missed degraded writes and need Resync (or Rebuild)
// before re-admission. The answer comes from the surviving servers' logs,
// not client memory, so it works from a freshly started process.
func (c *Client) DirtyServers(f *File) []int {
	return recovery.DirtyServers(c.inner, f.inner)
}

// ServerHealthy reports whether server idx currently answers a liveness
// probe, bypassing the client's circuit breaker: the recovery orchestrator
// uses it to notice a returned-but-stale server that normal traffic is
// routing around.
func (c *Client) ServerHealthy(idx int) bool {
	if idx < 0 || idx >= c.inner.NumServers() {
		return false
	}
	_, err := c.inner.ServerCaller(idx).Call(&wire.Health{})
	return err == nil
}

// Verify checks the file's redundancy invariants (mirror equality, parity
// correctness, overflow-mirror agreement) and returns a description of
// each violation. An empty result means the file is consistent.
func (c *Client) Verify(f *File) ([]string, error) {
	return recovery.Verify(c.inner, f.inner)
}

// ErrStripeTorn is returned by writes to a fail-stopped stripe: one whose
// earlier read-modify-write died mid-flight (lease expiry, dirty unlock, or
// a crash-restarted parity server), leaving data and parity possibly
// inconsistent. The stripe refuses further RMWs until ReplayIntents
// reconciles it.
var ErrStripeTorn = wire.ErrStripeTorn

// ErrLeaseExpired is returned when a parity-lock operation arrives after
// the server already expired the caller's lease and revoked the lock.
var ErrLeaseExpired = wire.ErrLeaseExpired

// ReplayReport summarizes one intent-replay pass over a file.
type ReplayReport = recovery.ReplayReport

// ReplayIntents runs crash-restart recovery for the file: every abandoned
// stripe intent (an RMW that died between its data writes and its unlocking
// parity write) has its parity reconstructed from the stripe's data units
// and is retired, re-admitting the stripe for writes. Run it after a parity
// server restart or whenever writes fail with ErrStripeTorn.
func (c *Client) ReplayIntents(f *File) (*ReplayReport, error) {
	return recovery.ReplayIntents(c.inner, f.inner)
}

// ScrubReport is the outcome of one integrity-scrub pass: per-redundancy-
// kind counts of items checked, mismatched, repaired, and unrepairable,
// plus a note on every mismatch found.
type ScrubReport = scrub.Report

// ScrubJournal carries last-known-good checksums between scrub passes of
// the same file, letting a later pass identify which copy of a diverged
// pair is the corrupt one. Keep one journal per file for as long as the
// process lives.
type ScrubJournal = scrub.Journal

// NewScrubJournal returns an empty scrub journal.
func NewScrubJournal() *ScrubJournal { return scrub.NewJournal() }

// ScrubOptions tunes one scrub pass.
type ScrubOptions struct {
	// RateLimit caps scrub I/O in store bytes per second (simulated time
	// when the cluster is timed); <= 0 means unlimited.
	RateLimit float64
	// RepairData permits repairs that overwrite the primary data copy when
	// the journal evidence says the data, not the redundancy, is corrupt.
	// Off by default; such finds are reported as unrepairable instead.
	RepairData bool
	// Journal enables evidence-based repair decisions across passes.
	Journal *ScrubJournal
	// Cancel, when closed, stops the pass at the next batch boundary; Scrub
	// then returns its partial report with ErrScrubCanceled.
	Cancel <-chan struct{}
}

// ErrScrubCanceled is returned by Scrub when ScrubOptions.Cancel fires
// mid-pass; the returned report covers what was scrubbed before the stop.
var ErrScrubCanceled = scrub.ErrCanceled

// Scrub runs one online integrity pass over the file: it cross-checks
// every redundant copy (mirror, parity, overflow mirror) against the data
// by checksum, re-reads only what disagrees, and repairs the losing copy in
// place. It is safe to run while the file is being written.
func (c *Client) Scrub(f *File, opts ScrubOptions) (*ScrubReport, error) {
	return scrub.Run(c.inner, f.inner, scrub.Options{
		RateLimit:  opts.RateLimit,
		RepairData: opts.RepairData,
		Journal:    opts.Journal,
		Cancel:     opts.Cancel,
	})
}

// DropServerCaches empties every server's page cache.
func (c *Client) DropServerCaches() error { return c.inner.DropServerCaches() }

// StorageTotals reports each server's total stored bytes (du-style, across
// all files) — what `csar df` prints.
func (c *Client) StorageTotals() ([]int64, error) { return c.inner.StorageTotals() }

// Metrics is a snapshot of a client's operation counters: how its I/O was
// translated by the redundancy engine (full-stripe vs read-modify-write vs
// overflow portions), bytes moved, and degraded-mode activity.
type Metrics = client.Metrics

// Metrics returns the client's operation counters.
func (c *Client) Metrics() Metrics { return c.inner.Metrics() }

// Stats is a snapshot of an observability registry: named counters, gauges,
// and latency histograms with count/sum/max and quantile estimation.
type Stats = obs.Snapshot

// KV is one named counter or gauge value inside a Stats snapshot.
type KV = obs.KV

// ServerStats is one I/O server's observability dump, fetched over the
// Stats RPC: request totals, counters (bytes in/out, errors, slow ops),
// gauges (locks held, live intents, dirty-log entries), and per-RPC-kind
// latency histograms. Requests < 0 marks a server that did not answer.
type ServerStats = wire.StatsResp

// Stats snapshots this client's latency histograms and counters: per-op
// latencies (op_read, op_write and its per-path splits), per-RPC-kind
// latencies, parity-lock wait, and pass timings.
func (c *Client) Stats() Stats { return c.inner.Stats() }

// ServerStats collects every I/O server's observability snapshot over the
// Stats RPC. Unreachable servers yield a marker entry (Requests < 0)
// rather than an error, so a degraded cluster can still be inspected.
func (c *Client) ServerStats() []ServerStats { return c.inner.ServerStats() }

// ErrNotPrimary is returned by namespace mutations sent to a standby
// manager; the client's failover normally absorbs it by routing to the
// primary.
var ErrNotPrimary = wire.ErrNotPrimary

// ErrStaleEpoch is returned by a manager that has been deposed — a newer
// primary epoch exists — fencing it off exactly like an expired parity
// lease fences a stale writer. Re-issuing the operation routes it to the
// new primary.
var ErrStaleEpoch = wire.ErrStaleEpoch

// ManagerStatus is one manager's role report: its cluster index, primary
// epoch, whether it currently believes it is primary, the last operation
// sequence number it holds, and its namespace/WAL sizes. Files < 0 marks a
// manager that did not answer the probe.
type ManagerStatus = wire.MetaStatusResp

// ManagerStatuses probes every manager in the group and returns their
// status reports in group order; unreachable managers get a marker entry
// (Files < 0) rather than failing the collection.
func (c *Client) ManagerStatuses() []ManagerStatus { return c.inner.ManagerStatuses() }

// ManagerStats collects every manager's observability snapshot over the
// Stats RPC, in group order; unreachable managers get a marker entry
// (Requests < 0). The manager's snapshot carries its WAL, replication and
// failover counters plus per-RPC-kind latency histograms.
func (c *Client) ManagerStats() []ServerStats { return c.inner.ManagerStats() }

// CurrentManager returns the index (into the dialed manager group) that
// metadata RPCs currently route to.
func (c *Client) CurrentManager() int { return c.inner.CurrentManager() }

// StatsOfServer converts one server's Stats reply into a Stats snapshot so
// it can be merged and rendered with the same code as client snapshots.
func StatsOfServer(sr ServerStats) Stats { return client.SnapOfStatsResp(sr) }

// MergeStats sums same-name counters, gauges, and histograms across
// snapshots — e.g. one Stats view over several clients or servers.
func MergeStats(snaps ...Stats) Stats { return obs.Merge(snaps...) }

// Close releases the client's network connections (every I/O server plus
// the manager). Programs that Dial in a loop must Close each client or leak
// descriptors.
func (c *Client) Close() error { return c.inner.Close() }

// File is an open CSAR file. Reads and writes may be issued concurrently;
// as in PVFS, concurrent writers to non-overlapping regions are consistent
// while overlapping concurrent writes carry no guarantees.
type File struct {
	inner *client.File
}

// WriteAt writes len(p) bytes at offset off, maintaining the file's
// redundancy. It implements io.WriterAt.
func (f *File) WriteAt(p []byte, off int64) (int, error) { return f.inner.WriteAt(p, off) }

// ReadAt reads len(p) bytes at offset off; bytes never written read as
// zero. It implements io.ReaderAt and serves degraded reads when a server
// is marked down.
func (f *File) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

// Size returns the file's logical size as known to this client.
func (f *File) Size() int64 { return f.inner.Size() }

// Scheme returns the file's redundancy scheme.
func (f *File) Scheme() Scheme { return f.inner.Scheme() }

// Sync flushes the file's server-side stores and publishes its size to the
// manager.
func (f *File) Sync() error { return f.inner.Sync() }

// Compact migrates a Hybrid file's overflow-resident data back to RAID5
// and reclaims the overflow storage (the paper's Section 6.7 background
// recovery process). With it, "the long-term storage of the Hybrid scheme
// would be the same as the RAID5 scheme". No-op for other schemes.
func (f *File) Compact() error { return f.inner.Compact() }

// StorageBytes reports the bytes this file occupies across all servers:
// the total and the breakdown by store (data, mirror, parity, overflow,
// overflow mirror) — the measurement behind Table 2 of the paper.
func (f *File) StorageBytes() (total int64, byStore [5]int64, err error) {
	return f.inner.StorageBytes()
}

// Internal returns the underlying client file; the workload and benchmark
// harnesses in this repository use it, applications should not.
func (f *File) Internal() *client.File { return f.inner }

// InternalClient returns the underlying client; harness use only.
func (c *Client) InternalClient() *client.Client { return c.inner }

// ErrServerDown is the error calls to a stopped server return.
var ErrServerDown = cluster.ErrServerDown

// IsServerDown reports whether err indicates an unavailable server — one
// that is stopped, unreachable, timing out, or held out by the client's
// circuit breaker.
func IsServerDown(err error) bool {
	return errors.Is(err, cluster.ErrServerDown) ||
		errors.Is(err, wire.ErrUnavailable) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Policy tunes the client's RPC resilience layer: per-call deadlines,
// retry/backoff for idempotent calls, and the per-server circuit breaker.
// The zero Policy disables the layer entirely.
type Policy = client.Policy

// DefaultPolicy is the resilience configuration Dial applies by default.
func DefaultPolicy() Policy { return client.DefaultPolicy() }

// SetResilience installs a resilience policy on the client; call before
// issuing I/O.
func (c *Client) SetResilience(p Policy) { c.inner.SetPolicy(p) }

// BreakerState is one server's circuit-breaker state.
type BreakerState = client.BreakerState

// Breaker states.
const (
	BreakerClosed  = client.BreakerClosed
	BreakerOpen    = client.BreakerOpen
	BreakerProbing = client.BreakerProbing
)

// BreakerStates returns every server's current circuit-breaker state.
func (c *Client) BreakerStates() []BreakerState { return c.inner.BreakerStates() }

// FailedServer extracts the server index from an unavailability error
// returned by a file operation; ok is false for errors that do not
// attribute a failure to one server.
func FailedServer(err error) (idx int, ok bool) { return client.FailedServer(err) }
