package csar_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"csar"
	"csar/internal/cluster"
	"csar/internal/wire"
)

func streamFile(t *testing.T, scheme csar.Scheme) *csar.File {
	t.Helper()
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("s", csar.FileOptions{Scheme: scheme, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStreamCopyRoundTrip(t *testing.T) {
	f := streamFile(t, csar.Hybrid)
	src := strings.Repeat("sequential hartree-fock style output\n", 10000)

	w := f.Stream()
	if _, err := io.Copy(w, strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := f.Stream()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != src {
		t.Fatal("stream round trip mismatch")
	}
}

func TestStreamSeek(t *testing.T) {
	f := streamFile(t, csar.Raid5)
	s := f.Stream()
	s.Write([]byte("0123456789"))

	if pos, err := s.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("SeekStart: %d, %v", pos, err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(s, buf); err != nil || string(buf) != "234" {
		t.Fatalf("read after seek: %q, %v", buf, err)
	}
	if pos, err := s.Seek(-2, io.SeekCurrent); err != nil || pos != 3 {
		t.Fatalf("SeekCurrent: %d, %v", pos, err)
	}
	if pos, err := s.Seek(-1, io.SeekEnd); err != nil || pos != 9 {
		t.Fatalf("SeekEnd: %d, %v", pos, err)
	}
	if _, err := io.ReadFull(s, buf[:1]); err != nil || buf[0] != '9' {
		t.Fatalf("read at end-1: %q, %v", buf[:1], err)
	}
	if _, err := s.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := s.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestStreamEOF(t *testing.T) {
	f := streamFile(t, csar.Raid1)
	s := f.Stream()
	s.Write(bytes.Repeat([]byte{7}, 100))
	s.Seek(0, io.SeekStart)

	got, err := io.ReadAll(s)
	if err != nil || len(got) != 100 {
		t.Fatalf("ReadAll: %d bytes, %v", len(got), err)
	}
	if n, err := s.Read(make([]byte, 10)); n != 0 || err != io.EOF {
		t.Fatalf("read at EOF: %d, %v", n, err)
	}
	// Writing past EOF extends; reading then succeeds.
	s.Write([]byte("more"))
	s.Seek(-4, io.SeekEnd)
	buf := make([]byte, 4)
	if _, err := io.ReadFull(s, buf); err != nil || string(buf) != "more" {
		t.Fatalf("after extend: %q, %v", buf, err)
	}
}

func TestStreamSparseWriteViaSeek(t *testing.T) {
	f := streamFile(t, csar.Hybrid)
	s := f.Stream()
	s.Seek(1<<20, io.SeekStart)
	s.Write([]byte("tail"))
	if f.Size() != 1<<20+4 {
		t.Fatalf("size=%d", f.Size())
	}
	s.Seek(0, io.SeekStart)
	head := make([]byte, 8)
	if _, err := io.ReadFull(s, head); err != nil {
		t.Fatal(err)
	}
	for _, b := range head {
		if b != 0 {
			t.Fatal("hole not zero through stream")
		}
	}
}

func TestStreamWriteWindowRoundTrip(t *testing.T) {
	f := streamFile(t, csar.Raid5)
	src := strings.Repeat("pipelined hartree-fock style output\n", 10000)

	w := f.Stream()
	w.SetWriteWindow(8)
	// 16 KB sequential requests, the paper's Hartree-Fock pattern.
	for buf := []byte(src); len(buf) > 0; {
		n := 16 << 10
		if n > len(buf) {
			n = len(buf)
		}
		if _, err := w.Write(buf[:n]); err != nil {
			t.Fatal(err)
		}
		buf = buf[n:]
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := io.ReadAll(f.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte(src)) {
		t.Fatal("windowed stream round trip mismatch")
	}
}

// streamFaultFile is streamFile plus the cluster handle, for tests that
// inject request-level faults against the stream's writes.
func streamFaultFile(t *testing.T, scheme csar.Scheme) (*csar.Cluster, *csar.File) {
	t.Helper()
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("s", csar.FileOptions{Scheme: scheme, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return c, f
}

// TestStreamSeekDrainsWriteWindow is the regression test for Seek leaving
// pipelined writes in flight: a seek with a failed write still in the
// window must drain it and surface the error instead of repositioning over
// it — a backward seek plus rewrite would otherwise race the in-flight
// write covering the same range.
func TestStreamSeekDrainsWriteWindow(t *testing.T) {
	c, f := streamFaultFile(t, csar.Raid0)
	flt := c.Internal().Inject(cluster.FaultPoint{
		Server: 0, Kind: wire.KWriteData, Action: cluster.FaultDrop,
	})

	s := f.Stream()
	s.SetWriteWindow(4)
	// A unit-sized write at 0 lands entirely on server 0; the injected drop
	// fails it asynchronously inside the window.
	if _, err := s.Write(make([]byte, 4096)); err != nil {
		t.Fatalf("windowed write failed synchronously: %v", err)
	}
	if pos, err := s.Seek(0, io.SeekStart); err == nil {
		t.Fatalf("Seek repositioned to %d over an in-flight failed write without draining the window", pos)
	}
	flt.Release()

	// The failed write's error was consumed; the stream recovers and the
	// rewrite of the same range goes through cleanly.
	if _, err := s.Seek(0, io.SeekStart); err != nil {
		t.Fatalf("seek after recovery: %v", err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	if _, err := s.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("rewrite after drained seek lost data")
	}
}

// TestStreamWindowDisableSurfacesError is the regression test for
// SetWriteWindow(1) silently losing the final pipelined write's error: the
// internal drain used to consume the window's sticky error and then nil the
// window, so no later op could report it. The error must surface on the
// next Write, Flush or Close.
func TestStreamWindowDisableSurfacesError(t *testing.T) {
	c, f := streamFaultFile(t, csar.Raid0)
	flt := c.Internal().Inject(cluster.FaultPoint{
		Server: 0, Kind: wire.KWriteData, Action: cluster.FaultDrop,
	})

	s := f.Stream()
	s.SetWriteWindow(4)
	if _, err := s.Write(make([]byte, 4096)); err != nil {
		t.Fatalf("windowed write failed synchronously: %v", err)
	}
	// Disabling the window drains it; the drain's failure must be stashed,
	// not dropped on the floor with the window.
	s.SetWriteWindow(1)
	flt.Release()
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("final pipelined write error silently lost by SetWriteWindow(1)")
	}
	// The stashed error was reported exactly once; the stream is clean.
	if err := s.Close(); err != nil {
		t.Fatalf("stream did not recover after surfacing the stashed error: %v", err)
	}
}
