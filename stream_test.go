package csar_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"csar"
)

func streamFile(t *testing.T, scheme csar.Scheme) *csar.File {
	t.Helper()
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("s", csar.FileOptions{Scheme: scheme, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStreamCopyRoundTrip(t *testing.T) {
	f := streamFile(t, csar.Hybrid)
	src := strings.Repeat("sequential hartree-fock style output\n", 10000)

	w := f.Stream()
	if _, err := io.Copy(w, strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := f.Stream()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != src {
		t.Fatal("stream round trip mismatch")
	}
}

func TestStreamSeek(t *testing.T) {
	f := streamFile(t, csar.Raid5)
	s := f.Stream()
	s.Write([]byte("0123456789"))

	if pos, err := s.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("SeekStart: %d, %v", pos, err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(s, buf); err != nil || string(buf) != "234" {
		t.Fatalf("read after seek: %q, %v", buf, err)
	}
	if pos, err := s.Seek(-2, io.SeekCurrent); err != nil || pos != 3 {
		t.Fatalf("SeekCurrent: %d, %v", pos, err)
	}
	if pos, err := s.Seek(-1, io.SeekEnd); err != nil || pos != 9 {
		t.Fatalf("SeekEnd: %d, %v", pos, err)
	}
	if _, err := io.ReadFull(s, buf[:1]); err != nil || buf[0] != '9' {
		t.Fatalf("read at end-1: %q, %v", buf[:1], err)
	}
	if _, err := s.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := s.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestStreamEOF(t *testing.T) {
	f := streamFile(t, csar.Raid1)
	s := f.Stream()
	s.Write(bytes.Repeat([]byte{7}, 100))
	s.Seek(0, io.SeekStart)

	got, err := io.ReadAll(s)
	if err != nil || len(got) != 100 {
		t.Fatalf("ReadAll: %d bytes, %v", len(got), err)
	}
	if n, err := s.Read(make([]byte, 10)); n != 0 || err != io.EOF {
		t.Fatalf("read at EOF: %d, %v", n, err)
	}
	// Writing past EOF extends; reading then succeeds.
	s.Write([]byte("more"))
	s.Seek(-4, io.SeekEnd)
	buf := make([]byte, 4)
	if _, err := io.ReadFull(s, buf); err != nil || string(buf) != "more" {
		t.Fatalf("after extend: %q, %v", buf, err)
	}
}

func TestStreamSparseWriteViaSeek(t *testing.T) {
	f := streamFile(t, csar.Hybrid)
	s := f.Stream()
	s.Seek(1<<20, io.SeekStart)
	s.Write([]byte("tail"))
	if f.Size() != 1<<20+4 {
		t.Fatalf("size=%d", f.Size())
	}
	s.Seek(0, io.SeekStart)
	head := make([]byte, 8)
	if _, err := io.ReadFull(s, head); err != nil {
		t.Fatal(err)
	}
	for _, b := range head {
		if b != 0 {
			t.Fatal("hole not zero through stream")
		}
	}
}

func TestStreamWriteWindowRoundTrip(t *testing.T) {
	f := streamFile(t, csar.Raid5)
	src := strings.Repeat("pipelined hartree-fock style output\n", 10000)

	w := f.Stream()
	w.SetWriteWindow(8)
	// 16 KB sequential requests, the paper's Hartree-Fock pattern.
	for buf := []byte(src); len(buf) > 0; {
		n := 16 << 10
		if n > len(buf) {
			n = len(buf)
		}
		if _, err := w.Write(buf[:n]); err != nil {
			t.Fatal(err)
		}
		buf = buf[n:]
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := io.ReadAll(f.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte(src)) {
		t.Fatal("windowed stream round trip mismatch")
	}
}
